#!/usr/bin/env python
"""Scenario: FPNA breaks a tolerance-based correctness-testing harness.

Computational-chemistry codes (the paper cites CP2K) regression-test
energies against reference values with tolerances as tight as 1e-14.  This
example builds such a harness around a mock "energy kernel" (a big
reduction over pairwise terms) and shows:

* with a deterministic reduction, the test verdict is stable;
* with a non-deterministic one, the verdict flickers run to run once the
  tolerance approaches the FPNA noise floor — masking real bugs and
  flagging phantom ones;
* two remedies: the deterministic kernel, or widening the tolerance to the
  measured noise floor (with the coverage cost that implies).

Run:  python examples/correctness_testing.py
"""

import numpy as np

import repro
from repro.fp import exact_sum


class EnergyKernel:
    """Mock molecular 'energy': a large sum of pairwise interaction terms."""

    def __init__(self, n_terms: int, ctx) -> None:
        # Boltzmann-ish positive terms, like the paper's physics workloads.
        self.terms = ctx.data(stream=2).exponential(1.0, n_terms)
        self.ctx = ctx

    def energy(self, reduction) -> float:
        return reduction.sum(self.terms, ctx=self.ctx)


def run_test_suite(kernel, reduction, reference, tolerance, n_trials=20):
    """Tolerance test: |E - E_ref| <= tol * |E_ref|, repeated n_trials times."""
    verdicts = []
    for _ in range(n_trials):
        e = kernel.energy(reduction)
        verdicts.append(abs(e - reference) <= tolerance * abs(reference))
    return verdicts


def main() -> None:
    ctx = repro.seed_all(7)
    kernel = EnergyKernel(2_000_000, ctx)
    reference = exact_sum(kernel.terms)

    det = repro.get_reduction("sptr", threads_per_block=128)
    nondet = repro.get_reduction("spa", threads_per_block=64)

    print(f"reference energy (correctly rounded): {reference:.15e}\n")
    print(f"{'tolerance':>10} | {'deterministic':>15} | {'non-deterministic':>18}")
    print("-" * 52)
    for tol in (1e-12, 1e-13, 1e-14, 5e-15, 2e-15, 1e-15, 1e-16):
        v_det = run_test_suite(kernel, det, reference, tol)
        v_nd = run_test_suite(kernel, nondet, reference, tol)

        def fmt(verdicts):
            n_pass = sum(verdicts)
            if n_pass == len(verdicts):
                return "PASS (stable)"
            if n_pass == 0:
                return "FAIL (stable)"
            return f"FLAKY ({n_pass}/{len(verdicts)} pass)"

        print(f"{tol:>10.0e} | {fmt(v_det):>15} | {fmt(v_nd):>18}")

    # Measure the non-deterministic noise floor, the paper's Vs statistics.
    energies = np.array([kernel.energy(nondet) for _ in range(100)])
    rel_spread = np.ptp(energies) / abs(reference)
    print(f"\nmeasured ND noise floor (relative spread over 100 runs): {rel_spread:.2e}")
    print("any tolerance below this line is un-testable with the ND kernel;")
    print("the deterministic kernel keeps a stable verdict at every tolerance.")


if __name__ == "__main__":
    main()
