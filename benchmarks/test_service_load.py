"""Bench SERVICE: the experiment daemon under seeded NHPP traffic.

Two numbers go into ``BENCH_0009.json``:

* ``test_service_warm_roundtrip`` — one blocking ``POST /jobs?wait=1``
  against a warmed cache: HTTP parse + admission + queue + cache probe +
  response, with **zero** experiment executions (asserted via the
  executor's dispatch counter).  The mean is pure per-job service
  overhead — the number that must stay far below any real experiment.
* ``test_service_nhpp_load`` — a seeded piecewise-constant NHPP
  (shoulder/peak/shoulder daypart) fired in real time against the warmed
  daemon.  The schedule replays bit-identically per seed, so run-to-run
  variation is all service, none workload.  The measured mean is
  horizon-bound (arrivals are scheduled on the wall clock); the load
  outcomes — throughput, hit rate, p50/p99 latency, rejections — land in
  ``extra_info`` and are asserted: every request answered, hit rate
  exactly 1.0, and the executor never dispatches under traffic.

Jobs are cheap monolithic experiments (``table2`` + a trimmed ``fig4``)
so the cold warm-up outside the measured rounds stays CI-sized; the
warm path under test never touches them anyway.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.harness import JobRunner, JobSpec, ResultCache
from repro.harness.parallel import ShardedExecutor
from repro.harness.service import LoadGenerator, PiecewiseConstantNHPP, ServiceThread

from conftest import run_once

#: The request mix the generator draws from (seeded, so the mix replays).
JOBS = [
    {"experiment_id": "table2"},
    {"experiment_id": "fig4", "overrides": {"n_runs": 4}},
]

#: Shoulder/peak/shoulder intensity — ~70 expected arrivals over 2s.
SEGMENTS = [(0.0, 0.5, 20.0), (0.5, 1.5, 40.0), (1.5, 2.0, 20.0)]
HORIZON_S = 2.0


@pytest.fixture(scope="module")
def warm_service(tmp_path_factory):
    """A live daemon over a serial executor, cache pre-warmed with every
    job in the mix (outside any measured round)."""
    cache = ResultCache(tmp_path_factory.mktemp("service-bench-cache"))
    with ShardedExecutor(workers=1) as executor:
        runner = JobRunner(executor, cache)
        for doc in JOBS:
            runner.run(JobSpec.from_dict(doc))
        with ServiceThread(runner, queue_limit=64) as svc:
            yield svc


def _dispatches(svc) -> int:
    with urllib.request.urlopen(svc.base_url + "/stats", timeout=30) as resp:
        return json.loads(resp.read().decode())["executor"]["dispatches"]


def test_service_warm_roundtrip(benchmark, warm_service):
    url = warm_service.base_url + "/jobs?wait=1"
    payload = json.dumps(JOBS[0]).encode()

    def roundtrip():
        req = urllib.request.Request(
            url, data=payload,
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            return json.loads(resp.read().decode())

    before = _dispatches(warm_service)
    doc = benchmark(roundtrip)
    assert doc["status"] == "done"
    assert doc["outcome"]["cached"] is True
    assert _dispatches(warm_service) == before  # no worker ever touched


def test_service_nhpp_load(benchmark, warm_service):
    before = _dispatches(warm_service)

    def load():
        gen = LoadGenerator(
            warm_service.base_url,
            PiecewiseConstantNHPP(SEGMENTS, seed=42),
            JOBS,
            seed=42,
        )
        return gen.run(HORIZON_S)

    report = run_once(benchmark, load)
    assert report.n_scheduled > 20
    assert report.n_ok == report.n_scheduled  # nothing rejected or failed
    assert report.n_failed == 0 and report.n_rejected == 0
    assert report.hit_rate == 1.0
    assert _dispatches(warm_service) == before  # pure cache traffic
    benchmark.extra_info["n_requests"] = report.n_scheduled
    benchmark.extra_info["throughput_rps"] = round(report.throughput_rps, 2)
    benchmark.extra_info["hit_rate"] = report.hit_rate
    benchmark.extra_info["p50_ms"] = round(report.percentile_ms(0.50), 3)
    benchmark.extra_info["p99_ms"] = round(report.percentile_ms(0.99), 3)
