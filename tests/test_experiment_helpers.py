"""Tests for the shared experiment machinery (_sumdist, _opruns, _gnn)."""

import numpy as np
import pytest

from repro.experiments._gnn import (
    build_lpu_gnn_program,
    gnn_inference_cost_us,
    gnn_training_cost_s,
    run_inference,
    train_graphsage,
)
from repro.experiments._opruns import (
    OpVariability,
    index_add_variability,
    scatter_reduce_variability,
)
from repro.experiments._sumdist import ao_vs_samples, sample_array, spa_vs_samples
from repro.graph import cora_like
from repro.reductions import get_reduction
from repro.runtime import RunContext


class TestSumdist:
    def test_sample_array_distributions(self, rng):
        for dist in ("uniform", "normal", "boltzmann"):
            x = sample_array(rng, 1000, dist)
            assert x.shape == (1000,)
        with pytest.raises(ValueError):
            sample_array(rng, 10, "levy")

    def test_uniform_positivity(self, rng):
        assert np.all(sample_array(rng, 1000, "uniform") >= 0)

    def test_spa_samples_match_reduction_class(self):
        # The hoisted-partials shortcut must be bit-identical to calling
        # the SinglePassAtomic class directly.
        ctx_a, ctx_b = RunContext(4), RunContext(4)
        x = ctx_a.data(9).uniform(0, 10, 10_000)
        vs_fast = spa_vs_samples(x, 5, ctx_a, threads_per_block=64)

        spa = get_reduction("spa", threads_per_block=64)
        sptr = get_reduction("sptr", threads_per_block=64)
        s_d = sptr.sum(x)
        vs_slow = np.array([
            1.0 - abs(spa.sum(x, ctx=ctx_b) / s_d) for _ in range(5)
        ])
        np.testing.assert_array_equal(vs_fast, vs_slow)

    def test_ao_samples_shape_and_variation(self, ctx):
        x = sample_array(ctx.data(1), 5_000, "uniform")
        vs = ao_vs_samples(x, 30, ctx)
        assert vs.shape == (30,)
        assert np.unique(vs).size > 1


class TestOpruns:
    def test_scatter_reduce_variability_fields(self, ctx):
        v = scatter_reduce_variability(500, 0.5, "sum", 10, ctx)
        assert isinstance(v, OpVariability)
        assert v.n_runs == 10
        assert 0 <= v.vc_mean <= 1

    def test_index_add_variability_uses_deterministic_reference(self, ctx):
        v = index_add_variability(60, 0.5, 10, ctx)
        assert v.n_runs == 10
        assert np.isfinite(v.ermv_mean)

    def test_workloads_stable_across_calls(self):
        a = scatter_reduce_variability(500, 0.5, "sum", 8, RunContext(5))
        b = scatter_reduce_variability(500, 0.5, "sum", 8, RunContext(5))
        assert a == b


class TestGnnHelpers:
    @pytest.fixture(scope="class")
    def ds(self):
        return cora_like(num_nodes=100, num_edges=200, num_features=16,
                         num_classes=3, ctx=RunContext(0))

    def test_training_produces_snapshots_and_losses(self, ds):
        run = train_graphsage(ds, hidden=4, epochs=3, lr=0.01,
                              deterministic=True, ctx=RunContext(0))
        assert len(run.losses) == 3
        assert len(run.epoch_weights) == 3
        assert run.weights.shape == run.epoch_weights[-1].shape

    def test_deterministic_training_replayable(self, ds):
        a = train_graphsage(ds, hidden=4, epochs=2, lr=0.01,
                            deterministic=True, ctx=RunContext(0))
        b = train_graphsage(ds, hidden=4, epochs=2, lr=0.01,
                            deterministic=True, ctx=RunContext(0))
        np.testing.assert_array_equal(a.weights, b.weights)

    def test_inference_shape(self, ds):
        run = train_graphsage(ds, hidden=4, epochs=1, lr=0.01,
                              deterministic=True, ctx=RunContext(0))
        logits = run_inference(run.model, ds, deterministic=True)
        assert logits.shape == (100, 3)

    def test_inference_cost_deterministic_penalty(self):
        dims = dict(n_nodes=2708, n_directed_edges=10858,
                    n_features=1433, hidden=16, n_classes=7)
        t_d = gnn_inference_cost_us("h100", deterministic=True, **dims)
        t_nd = gnn_inference_cost_us("h100", deterministic=False, **dims)
        assert 1.2 < t_d / t_nd < 3.0  # paper ratio: 3.92/2.17 = 1.81

    def test_training_cost_direction(self):
        dims = dict(epochs=10, n_nodes=2708, n_directed_edges=10858,
                    n_features=1433, hidden=16, n_classes=7)
        assert gnn_training_cost_s("h100", deterministic=True, **dims) > \
            gnn_training_cost_s("h100", deterministic=False, **dims)

    def test_lpu_program_structure(self):
        prog = build_lpu_gnn_program(
            n_nodes=100, n_directed_edges=200, n_features=8,
            hidden=4, n_classes=3,
        )
        names = [n.name for n in prog.nodes]
        assert names == ["agg0", "lin0", "act0", "agg1", "lin1", "act1", "softmax"]
