"""Figure 3 — Vc heatmaps vs (input dimension, reduction ratio).

Left panel: ``scatter_reduce`` (sum) over 1-D arrays of 1 000 .. 10 000
elements.  Right panel: ``index_add`` over 2-D square arrays of dimension
10 .. 800.  Both swept over R in [0.1, 1.0].  The paper's trends:
variability increases with input size and with R, approaching ``Vc ~ 1``
per run for the largest settings.
"""

from __future__ import annotations

from ..runtime import RunContext
from .base import Experiment, register
from ._opruns import index_add_variability, scatter_reduce_variability

__all__ = ["Fig3Heatmaps"]


class Fig3Heatmaps(Experiment):
    """Regenerates Fig 3 (Vc heatmaps for scatter_reduce and index_add)."""

    experiment_id = "fig3"
    title = "Fig 3: Vc heatmaps vs reduction ratio and input dimension"

    def params_for(self, scale: str) -> dict:
        if scale == "paper":
            return {
                "sr_dims": tuple(range(1_000, 10_001, 1_000)),
                "ia_dims": (10, 20, 40, 60, 80, 100, 200, 400, 600, 800),
                "ratios": tuple(round(0.1 * i, 1) for i in range(1, 11)),
                "n_runs": 1_000,
            }
        return {
            "sr_dims": (1_000, 3_000, 6_000, 10_000),
            "ia_dims": (10, 40, 100, 200),
            "ratios": (0.1, 0.3, 0.5, 0.7, 0.9, 1.0),
            "n_runs": 15,
        }

    def _run(self, ctx: RunContext, params: dict):
        rows: list[dict] = []
        for n in params["sr_dims"]:
            for r in params["ratios"]:
                v = scatter_reduce_variability(n, r, "sum", params["n_runs"], ctx)
                rows.append(
                    {"op": "scatter_reduce", "input_dim": n, "R": r, "vc_mean": v.vc_mean}
                )
        for n in params["ia_dims"]:
            for r in params["ratios"]:
                if r < 0.15:
                    continue  # paper's index_add panel starts at R = 0.2
                v = index_add_variability(n, r, params["n_runs"], ctx)
                rows.append(
                    {"op": "index_add", "input_dim": n, "R": r, "vc_mean": v.vc_mean}
                )
        notes = (
            "Trend checks: for both ops, Vc grows with input dimension and "
            "with R (contention serialization suppresses reordering at small "
            "R); scatter_reduce jumps at R = 1 (kernel-selection boost)."
        )
        return rows, notes, {}


register(Fig3Heatmaps())
