"""Bench E-F1: regenerate Fig 1 (SPA Vs PDFs, normal vs uniform)."""

from repro.experiments import get_experiment

from conftest import run_once


def test_fig1_regeneration(benchmark, ctx, scale):
    kwargs = {"scale": scale, "ctx": ctx}
    result = run_once(benchmark, get_experiment("fig1").run, **kwargs)
    rows = {r["distribution"]: r for r in result.rows}
    # Per-array PDFs are consistent with a normal (the paper's KL verdict).
    assert rows["uniform"]["frac_arrays_normal_by_kl"] >= 0.5
    assert rows["normal"]["frac_arrays_normal_by_kl"] >= 0.5
    # Mean/std depend on the input distribution.
    assert rows["uniform"]["vs_std_x1e16"] != rows["normal"]["vs_std_x1e16"]
    assert "pdf_uniform" in result.extra
