"""Bench E-F4: regenerate Fig 4 (Vc vs reduction ratio)."""

from repro.experiments import get_experiment

from conftest import run_once


def test_fig4_regeneration(benchmark, ctx, scale):
    kwargs = {"scale": scale, "ctx": ctx}
    if scale == "default":
        kwargs.update(n_runs=25)
    result = run_once(benchmark, get_experiment("fig4").run, **kwargs)
    by_r = {r["R"]: r for r in result.rows}
    rs = sorted(by_r)
    # index_add rises with R.
    assert by_r[rs[-1]]["index_add_vc"] > by_r[rs[0]]["index_add_vc"]
    # scatter_reduce: flat band below R=1, jump at R=1.
    flat = [by_r[r]["scatter_reduce_sum_vc"] for r in rs if r < 1.0]
    assert max(flat) < 4 * max(min(flat), 1e-4)
    assert by_r[1.0]["scatter_reduce_sum_vc"] > 2 * max(flat)
