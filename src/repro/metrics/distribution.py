"""Distributional analysis of variability samples (paper §III-C).

The paper asks whether FPNA-induced variability can be modelled as Gaussian
noise.  It estimates the probability density of ``Vs`` over many runs and
applies a Kullback–Leibler divergence criterion against a fitted normal:
SPA's variability converges to a normal whose parameters depend on the input
distribution and GPU family (Fig. 1), while AO's does not (Fig. 2).

This module provides the histogram PDF estimator, KL divergence between a
sample and a fitted normal, and a compact :class:`DistributionSummary` used
by the figure-reproduction experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..errors import ConfigurationError

__all__ = [
    "estimate_pdf",
    "kl_divergence",
    "kl_to_normal",
    "normality_report",
    "DistributionSummary",
]


def estimate_pdf(samples, bins: int = 101, range_: tuple[float, float] | None = None):
    """Histogram-based PDF estimate.

    Parameters
    ----------
    samples:
        1-D array of observations.
    bins:
        Number of equal-width bins.
    range_:
        Optional (low, high); defaults to the sample range.

    Returns
    -------
    (centers, density):
        Bin centers and density values (integrates to 1).
    """
    x = np.asarray(samples, dtype=np.float64).ravel()
    x = x[np.isfinite(x)]
    if x.size == 0:
        raise ConfigurationError("cannot estimate a PDF from an empty/non-finite sample")
    if bins < 2:
        raise ConfigurationError(f"bins must be >= 2, got {bins}")
    density, edges = np.histogram(x, bins=bins, range=range_, density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, density


def kl_divergence(p: np.ndarray, q: np.ndarray, *, eps: float = 1e-12) -> float:
    """Discrete KL divergence ``D(p || q)`` between two densities on the
    same support grid.  Both are renormalised to sum to 1; zero bins are
    floored at ``eps`` in ``q`` to keep the divergence finite.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ConfigurationError(f"p and q must share a grid, got {p.shape} vs {q.shape}")
    p = np.clip(p, 0, None)
    q = np.clip(q, eps, None)
    ps = p.sum()
    qs = q.sum()
    if ps <= 0:
        raise ConfigurationError("p must have positive mass")
    p = p / ps
    q = q / qs
    mask = p > 0
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))


def kl_to_normal(samples, bins: int = 101) -> float:
    """KL divergence between the sample histogram and a fitted normal.

    This is the paper's "KL criterion": a small value indicates the
    variability is well modelled by Gaussian noise.
    """
    x = np.asarray(samples, dtype=np.float64).ravel()
    x = x[np.isfinite(x)]
    if x.size < 8:
        raise ConfigurationError("need at least 8 samples for a KL estimate")
    mu = float(np.mean(x))
    sigma = float(np.std(x))
    if sigma == 0.0:
        # Degenerate: all samples identical. KL to any continuous density is
        # infinite; report inf rather than raising so callers can assert on it.
        return float("inf")
    centers, density = estimate_pdf(x, bins=bins)
    width = centers[1] - centers[0]
    q = stats.norm.pdf(centers, loc=mu, scale=sigma)
    return kl_divergence(density * width, q * width)


@dataclass(frozen=True)
class DistributionSummary:
    """Moments + normality evidence for a variability sample.

    Attributes
    ----------
    n:
        Sample size (finite values only).
    mean, std, skewness, excess_kurtosis:
        Standard moments.
    kl_normal:
        KL divergence to the moment-fitted normal (paper's criterion).
    shapiro_p:
        Shapiro–Wilk p-value on a (sub)sample; high = consistent with
        normal.  ``nan`` when the sample is degenerate.
    is_normal_kl:
        Convenience verdict ``kl_normal < kl_threshold``.
    """

    n: int
    mean: float
    std: float
    skewness: float
    excess_kurtosis: float
    kl_normal: float
    shapiro_p: float
    is_normal_kl: bool


def normality_report(
    samples,
    *,
    bins: int = 101,
    kl_threshold: float = 0.10,
    shapiro_max_n: int = 4999,
) -> DistributionSummary:
    """Build a :class:`DistributionSummary` for a variability sample.

    ``kl_threshold`` encodes the paper's qualitative verdict boundary: the
    SPA samples land well below it, the AO samples well above.
    """
    x = np.asarray(samples, dtype=np.float64).ravel()
    x = x[np.isfinite(x)]
    if x.size < 8:
        raise ConfigurationError("need at least 8 samples for a normality report")
    sigma = float(np.std(x))
    if sigma == 0.0:
        return DistributionSummary(
            n=int(x.size),
            mean=float(np.mean(x)),
            std=0.0,
            skewness=0.0,
            excess_kurtosis=0.0,
            kl_normal=float("inf"),
            shapiro_p=float("nan"),
            is_normal_kl=False,
        )
    kl = kl_to_normal(x, bins=bins)
    sub = x if x.size <= shapiro_max_n else x[:: max(1, x.size // shapiro_max_n)][:shapiro_max_n]
    try:
        shapiro_p = float(stats.shapiro(sub).pvalue)
    except Exception:  # pragma: no cover - scipy internal edge cases
        shapiro_p = float("nan")
    # Biased sample moments (scipy's default definitions), computed directly
    # — the generic scipy wrappers dominate the report's cost otherwise.
    d = x - np.mean(x)
    d2 = d * d
    m2 = float(np.mean(d2))
    m3 = float(np.mean(d2 * d))
    m4 = float(np.mean(d2 * d2))
    return DistributionSummary(
        n=int(x.size),
        mean=float(np.mean(x)),
        std=sigma,
        skewness=m3 / m2**1.5,
        excess_kurtosis=m4 / (m2 * m2) - 3.0,
        kl_normal=kl,
        shapiro_p=shapiro_p,
        is_normal_kl=bool(kl < kl_threshold),
    )
