"""Bench E-RA: ``run-all`` wall-clock, serial vs sharded (``--workers 4``).

The pinned workload runs every shardable experiment at run counts where
the run axis dominates (the dev-scale defaults are too small to shard
profitably — spawn overhead would swamp the signal).  Two benchmarks are
recorded into ``BENCH_0004.json``:

* ``test_runall_serial`` — single-process baseline;
* ``test_runall_workers4`` — the same workload through a warmed
  4-worker :class:`~repro.harness.parallel.ShardedExecutor` pool.

The worker pool is created (and its interpreters imported) *outside* the
measured round, so the sharded number reflects steady-state ``run-all``
execution, not one-time spawn cost.  **Note:** the sharded/serial ratio
is hardware-dependent — on a single-CPU container workers time-slice one
core and the sharded run can only match serial plus IPC overhead; the
speedup materialises with >= 2 cores.  The CI gate therefore pins both
absolute means against the committed baseline (regression ceiling) rather
than asserting a ratio.

Bit-exactness of the sharded results is not a bench concern — it is
pinned exhaustively by ``tests/test_sharded_executor.py`` — but one
experiment is cross-checked here so the bench can never silently measure
a diverged code path.
"""

from repro.experiments import get_experiment
from repro.harness.parallel import ShardedExecutor
from repro.runtime import RunContext

from conftest import run_once

#: (experiment id, overrides): every shardable experiment, scaled so the
#: run axis is the dominant cost (~10 s serial total).
WORKLOAD = [
    ("fig1", {"n_runs": 4_000}),
    ("fig3", {"n_runs": 200}),
    ("fig4", {"n_runs": 1_000}),
    ("fig5", {"n_runs": 1_000}),
    ("table5", {"n_runs": 400}),
    ("cgdiv", {"n_runs": 80}),
    ("table3", {"n_trials": 2_000}),
    ("table7", {"n_models": 32}),
]


def _run_serial() -> dict:
    return {
        eid: get_experiment(eid).run(ctx=RunContext(seed=0), **overrides)
        for eid, overrides in WORKLOAD
    }


def _run_sharded(executor: ShardedExecutor) -> dict:
    return {
        eid: executor.run(eid, seed=0, **overrides)
        for eid, overrides in WORKLOAD
    }


def test_runall_serial(benchmark):
    results = run_once(benchmark, _run_serial)
    assert set(results) == {eid for eid, _ in WORKLOAD}


def test_runall_workers4(benchmark):
    with ShardedExecutor(workers=4) as executor:
        executor.run("table3", seed=0)  # warm the pool outside the timed round
        results = run_once(benchmark, _run_sharded, executor)
    assert all(res.meta["shards"] > 1 for res in results.values())
    # Cross-check one experiment against serial: sharding must never
    # change bits, only wall-clock.
    eid, overrides = WORKLOAD[2]
    serial = get_experiment(eid).run(ctx=RunContext(seed=0), **overrides)
    assert results[eid].rows == serial.rows
