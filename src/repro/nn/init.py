"""Parameter initialisation schemes.

All initialisers take an explicit generator; modules default to the active
run context's **init stream**, which is stable across runs — matching the
paper's controlled setup, where seeds are fixed so the only residual
variability is kernel non-determinism.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..runtime import get_context

__all__ = ["default_rng", "glorot_uniform", "kaiming_uniform", "zeros", "uniform"]


def default_rng(stream: int = 0) -> np.random.Generator:
    """The run-context init stream (run-stable)."""
    return get_context().init(stream)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ConfigurationError("cannot infer fans from a 0-D shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def glorot_uniform(shape, rng: np.random.Generator | None = None, dtype=np.float32) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    rng = rng or default_rng()
    fan_in, fan_out = _fans(tuple(shape))
    a = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-a, a, size=shape).astype(dtype)


def kaiming_uniform(shape, rng: np.random.Generator | None = None, dtype=np.float32) -> np.ndarray:
    """Kaiming uniform for ReLU fan-in: U(-a, a), a = sqrt(6 / fan_in)."""
    rng = rng or default_rng()
    fan_in, _ = _fans(tuple(shape))
    a = math.sqrt(6.0 / fan_in)
    return rng.uniform(-a, a, size=shape).astype(dtype)


def uniform(shape, low: float, high: float, rng: np.random.Generator | None = None, dtype=np.float32) -> np.ndarray:
    """Plain uniform initialisation."""
    if high < low:
        raise ConfigurationError(f"high {high} < low {low}")
    rng = rng or default_rng()
    return rng.uniform(low, high, size=shape).astype(dtype)


def zeros(shape, dtype=np.float32) -> np.ndarray:
    """All-zeros initialisation (biases)."""
    return np.zeros(shape, dtype=dtype)
