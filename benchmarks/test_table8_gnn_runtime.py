"""Bench E-T8: regenerate Table 8 (GraphSAGE inference runtimes) and bench
one real simulated inference pass."""

import numpy as np

from repro.experiments import get_experiment
from repro.graph import cora_like
from repro.nn import GraphSAGE
from repro.tensor import Tensor


def test_table8_regeneration(benchmark, ctx, scale):
    result = benchmark(get_experiment("table8").run, scale=scale, ctx=ctx)
    det = next(r for r in result.rows if r["inference"] == "Deterministic")
    nd = next(r for r in result.rows if r["inference"] == "Non-deterministic")
    assert det["h100_ms"] > nd["h100_ms"]
    assert det["groq_ms"] < nd["h100_ms"] / 10


def test_real_inference_pass(benchmark, ctx):
    ds = cora_like(num_nodes=300, num_edges=600, num_features=64,
                   num_classes=7, ctx=ctx)
    model = GraphSAGE(64, 16, 7, rng=ctx.init())
    x = Tensor(ds.features)
    out = benchmark(lambda: model(x, ds.graph.edge_index).numpy())
    assert out.shape == (300, 7)
    assert np.all(np.isfinite(out))
