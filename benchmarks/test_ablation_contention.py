"""Ablation 1: the contention-serialization exponent gamma.

DESIGN.md S5: gamma drives the Vc-vs-R slope of Figs 3-4.  With gamma = 0
the race probability stops depending on R, and the Vc(R) curve *inverts*
(multiply-hit fraction dominates) — demonstrating the knob is load-bearing.
"""

import numpy as np

from repro.experiments._opruns import index_add_variability
from repro.ops.nondet import ContentionModel, OP_CONTENTION
from repro.runtime import RunContext

from conftest import run_once


def _slope(model, ctx, n_runs=20):
    import repro.ops.nondet as nd

    old = nd.OP_CONTENTION["index_add"]
    nd.OP_CONTENTION["index_add"] = model
    try:
        lo = index_add_variability(100, 0.2, n_runs, ctx).vc_mean
        hi = index_add_variability(100, 1.0, n_runs, ctx).vc_mean
    finally:
        nd.OP_CONTENTION["index_add"] = old
    return hi - lo


def test_gamma_controls_vc_slope(benchmark, ctx):
    base = OP_CONTENTION["index_add"]

    def ablate():
        with_gamma = _slope(base, RunContext(0))
        without_gamma = _slope(
            ContentionModel(q0=base.q0, gamma=0.0, n0=base.n0), RunContext(0)
        )
        return with_gamma, without_gamma

    with_gamma, without_gamma = run_once(benchmark, ablate)
    # Calibrated model: rising Vc with R.  gamma = 0: flat or falling.
    assert with_gamma > 0
    assert without_gamma < with_gamma
