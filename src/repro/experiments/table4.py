"""Table 4 — timing and performance penalty of the sum implementations.

100 sums of 4 194 304 FP64 elements on each device model; per
implementation, the predicted time and the paper's penalty metric
``Ps = 100 * (1 - t / min(t))``.  Times come from the calibrated analytic
cost model (DESIGN.md §2); the assertions that matter are *shape*
assertions: AO is ~2 orders of magnitude slower everywhere, SPA is fastest
on NVIDIA parts, TPRC on the MI250X, and all deterministic tree strategies
are within ~8% of the fastest.
"""

from __future__ import annotations

from ..gpusim.costmodel import CostModel
from ..gpusim.device import get_device
from ..runtime import RunContext
from .base import Experiment, register

__all__ = ["Table4Performance", "PAPER_TABLE4_US"]

#: Paper-reported per-100-sums timings (ms) for reference in EXPERIMENTS.md.
PAPER_TABLE4_US = {
    ("v100", "spa"): 6456, ("v100", "sptr"): 6469, ("v100", "tprc"): 6491,
    ("v100", "cu"): 6877, ("v100", "ao"): 872004,
    ("gh200", "spa"): 3019, ("gh200", "cu"): 3155, ("gh200", "tprc"): 3226,
    ("gh200", "sptr"): 3254, ("gh200", "ao"): 738687,
    ("mi250x", "tprc"): 6275, ("mi250x", "cu"): 6378, ("mi250x", "spa"): 6394,
    ("mi250x", "sptr"): 6552,
}


class Table4Performance(Experiment):
    """Regenerates Table 4 (per-device implementation timings + Ps)."""

    experiment_id = "table4"
    title = "Table 4: timing and performance penalty of parallel sum implementations"

    def params_for(self, scale: str) -> dict:
        params = {
            "devices": ("v100", "gh200", "mi250x"),
            "n_elements": 4_194_304,
            "n_sums": 100,
            "n_timing_samples": 10,
        }
        return params

    def _run(self, ctx: RunContext, params: dict):
        rows: list[dict] = []
        impl_sets = {
            "v100": ("spa", "sptr", "tprc", "cu", "ao"),
            "gh200": ("spa", "cu", "tprc", "sptr", "ao"),
            "mi250x": ("tprc", "cu", "spa", "sptr"),
        }
        for dev_name in params["devices"]:
            device = get_device(dev_name)
            cm = CostModel(device)
            rng = ctx.scheduler()
            samples = {
                impl: cm.sample_reduction(
                    impl, params["n_elements"], rng, n_samples=params["n_timing_samples"]
                )
                for impl in impl_sets.get(dev_name, ("spa", "sptr", "tprc", "cu", "ao"))
            }
            totals = {impl: s.mean_us * params["n_sums"] for impl, s in samples.items()}
            penalties = cm.performance_penalty(totals)
            for impl in sorted(totals, key=lambda k: totals[k]):
                rows.append(
                    {
                        "gpu": dev_name,
                        "implementation": impl.upper(),
                        "deterministic": impl not in ("spa", "ao"),
                        "time_100_sums_ms": totals[impl] / 1e3,
                        "time_std_ms": samples[impl].std_us * params["n_sums"] / 1e3,
                        "ps_percent": penalties[impl],
                        "paper_time_ms": PAPER_TABLE4_US.get((dev_name, impl), float("nan")) / 1e3
                        if (dev_name, impl) in PAPER_TABLE4_US
                        else None,
                    }
                )
        notes = (
            "Cost-model timings calibrated per DESIGN.md; shape checks: AO "
            ">= 100x slower than the fastest everywhere; fastest = SPA on "
            "V100/GH200, TPRC on MI250X; deterministic strategies within ~8%. "
            "Note the paper's V100 AO Ps value (-28781.3) is inconsistent "
            "with its own formula (should be ~-13406); we report the formula."
        )
        return rows, notes, {}


register(Table4Performance())
