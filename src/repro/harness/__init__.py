"""Sweep, timing and CLI utilities for running the experiments."""

from .sweep import grid, Sweep
from .timing import time_callable, TimingStats
from .results import save_result, load_result

__all__ = ["grid", "Sweep", "time_callable", "TimingStats", "save_result", "load_result"]
