"""Tests for the OpenMP-like runtime (paper SIII-B, Table 3) and the
multi-rank allreduce extension."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fp import exact_sum, serial_sum
from repro.openmp import OpenMPRuntime, RankReducer, Schedule, ring_allreduce, tree_allreduce
from repro.runtime import RunContext


class TestSchedules:
    def test_static_default_contiguous_blocks(self):
        rt = OpenMPRuntime(num_threads=4)
        chunks = rt.assignment(10).chunks
        assert chunks == ((0, 0, 3), (1, 3, 6), (2, 6, 8), (3, 8, 10))

    def test_static_chunked_round_robin(self):
        rt = OpenMPRuntime(num_threads=2, chunk=2)
        chunks = rt.assignment(8).chunks
        assert [c[0] for c in chunks] == [0, 1, 0, 1]

    def test_dynamic_covers_all_iterations(self, ctx):
        rt = OpenMPRuntime(num_threads=4, schedule="dynamic", chunk=3, ctx=ctx)
        chunks = rt.assignment(20).chunks
        covered = sorted((s, e) for _, s, e in chunks)
        assert covered[0][0] == 0 and covered[-1][1] == 20

    def test_guided_shrinks_chunks(self, ctx):
        rt = OpenMPRuntime(num_threads=4, schedule=Schedule.GUIDED, ctx=ctx)
        sizes = [e - s for _, s, e in rt.assignment(1000).chunks]
        assert sizes[0] > sizes[-1]

    def test_zero_iterations(self):
        assert OpenMPRuntime(num_threads=2).assignment(0).chunks == ()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OpenMPRuntime(num_threads=0)
        with pytest.raises(ConfigurationError):
            OpenMPRuntime(chunk=0)
        with pytest.raises(ConfigurationError):
            OpenMPRuntime(backend="tbb")


class TestReduceSum:
    def test_ordered_is_serial_fold(self, ctx, rng):
        x = rng.standard_normal(10_000)
        rt = OpenMPRuntime(num_threads=8, ctx=ctx)
        assert rt.reduce_sum(x, ordered=True) == serial_sum(x)

    def test_ordered_is_bitwise_stable(self, ctx, rng):
        x = rng.standard_normal(10_000)
        rt = OpenMPRuntime(num_threads=8, ctx=ctx)
        vals = {rt.reduce_sum(x, ordered=True) for _ in range(10)}
        assert len(vals) == 1

    def test_normal_reduction_varies(self, ctx, rng):
        # Table 3's left column: trailing digits wobble.
        x = rng.uniform(0, 1, 200_000) * 1e-9
        rt = OpenMPRuntime(num_threads=32, ctx=ctx)
        vals = rt.reduce_many(x, 10)
        assert len(set(vals.tolist())) > 1

    def test_normal_reduction_close_to_exact(self, ctx, rng):
        x = rng.standard_normal(10_000)
        rt = OpenMPRuntime(num_threads=8, ctx=ctx)
        assert rt.reduce_sum(x) == pytest.approx(exact_sum(x), abs=1e-9)

    def test_dynamic_schedule_reduction_correct(self, ctx, rng):
        x = rng.standard_normal(5_000)
        rt = OpenMPRuntime(num_threads=4, schedule="dynamic", chunk=64, ctx=ctx)
        assert rt.reduce_sum(x) == pytest.approx(exact_sum(x), abs=1e-10)

    def test_threads_backend_correct(self, rng):
        x = rng.standard_normal(5_000)
        rt = OpenMPRuntime(num_threads=4, backend="threads")
        assert rt.reduce_sum(x) == pytest.approx(exact_sum(x), abs=1e-10)

    def test_threads_backend_ordered_matches_serial(self, rng):
        x = rng.standard_normal(5_000)
        rt = OpenMPRuntime(num_threads=4, backend="threads")
        assert rt.reduce_sum(x, ordered=True) == serial_sum(x)

    def test_2d_rejected(self, ctx):
        with pytest.raises(ConfigurationError):
            OpenMPRuntime(ctx=ctx).reduce_sum(np.ones((2, 2)))

    def test_reduce_many_shape(self, ctx, rng):
        x = rng.standard_normal(100)
        out = OpenMPRuntime(ctx=ctx).reduce_many(x, 7)
        assert out.shape == (7,)

    def test_reduce_many_validation(self, ctx):
        with pytest.raises(ConfigurationError):
            OpenMPRuntime(ctx=ctx).reduce_many(np.ones(4), 0)

    def test_single_thread_equals_serial(self, ctx, rng):
        x = rng.standard_normal(1000)
        rt = OpenMPRuntime(num_threads=1, ctx=ctx)
        assert rt.reduce_sum(x) == serial_sum(x)


class TestMultiRank:
    def test_tree_fixed_order_deterministic(self, rng):
        contribs = rng.standard_normal((8, 100))
        a = tree_allreduce(contribs, fixed_order=True)
        b = tree_allreduce(contribs, fixed_order=True)
        np.testing.assert_array_equal(a, b)

    def test_tree_arrival_order_varies(self, ctx, rng):
        contribs = rng.standard_normal((16, 50_000))
        outs = {
            tree_allreduce(contribs, ctx.scheduler(), fixed_order=False).tobytes()
            for _ in range(6)
        }
        assert len(outs) > 1

    def test_tree_needs_rng_when_unordered(self, rng):
        with pytest.raises(ConfigurationError):
            tree_allreduce(rng.standard_normal((4, 4)), fixed_order=False)

    def test_ring_is_deterministic_and_correct(self, rng):
        contribs = rng.standard_normal((8, 1000))
        a = ring_allreduce(contribs)
        b = ring_allreduce(contribs)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_allclose(a, contribs.sum(axis=0), rtol=1e-10)

    def test_tree_correct_value(self, rng):
        contribs = rng.standard_normal((5, 10))
        np.testing.assert_allclose(
            tree_allreduce(contribs), contribs.sum(axis=0), rtol=1e-12
        )

    def test_rank_reducer_determinism_property(self):
        assert RankReducer(4, algorithm="ring").deterministic
        assert RankReducer(4, algorithm="tree", fixed_order=True).deterministic
        assert not RankReducer(4, algorithm="tree").deterministic

    def test_rank_reducer_validates_shape(self, ctx, rng):
        r = RankReducer(4, ctx=ctx)
        with pytest.raises(ConfigurationError):
            r.allreduce(rng.standard_normal((3, 10)))

    def test_rank_reducer_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            RankReducer(4, algorithm="butterfly")

    def test_rank_reducer_replayable(self):
        contribs = RunContext(3).data().standard_normal((8, 1000))
        a = RankReducer(8, ctx=RunContext(3)).allreduce(contribs)
        b = RankReducer(8, ctx=RunContext(3)).allreduce(contribs)
        np.testing.assert_array_equal(a, b)
