"""Run-axis batching state for the autograd stack.

Two pieces of shared state let the tensor layer run the paper's "N
independent training runs" protocol through one lockstep computation:

* :class:`RunBatch` — the per-batch state of ``R`` simulated runs
  advancing in lockstep: one scheduler stream per run (drawn in run order
  at batch start — the engine-wide one-stream-per-run contract, see
  :mod:`repro.gpusim.scheduler`), plus a :class:`~repro.ops.segmented.
  SegmentPlan` cache so each distinct index array is planned once per
  batch instead of once per kernel call per run per epoch.  Installed with
  :func:`run_batch`, consulted by the non-deterministic tensor kernels
  (:meth:`repro.tensor.Tensor.index_add` and the backward of
  :meth:`~repro.tensor.Tensor.gather_rows`).

* the **pinned kernel stream** (:func:`use_kernel_stream`) — the scalar
  twin of the same contract: one scheduler stream pinned for the duration
  of one simulated run, consumed by every ND kernel of that run in op
  order.  ``repro.experiments._gnn.train_graphsage`` pins one stream per
  training run; the lockstep batch draws the same streams in run order,
  which is what makes ``train_graphsage_runs`` bit-identical to the
  scalar loop.

Both are thread-local; neither changes any behaviour while inactive.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator

import numpy as np

from ..errors import ConfigurationError
from ..ops.segmented import SegmentPlan
from ..runtime import RunContext, get_context

__all__ = [
    "RunBatch",
    "run_batch",
    "active_run_batch",
    "use_kernel_stream",
    "current_kernel_stream",
]

_state = threading.local()


class RunBatch:
    """State of ``R`` simulated runs advancing in lockstep.

    Parameters
    ----------
    n_runs:
        Number of lockstep runs (the leading axis of run-batched tensors).
    ctx:
        Context supplying the per-run scheduler streams (ignored when
        ``rngs`` is given or ``deterministic=True``); defaults to the
        active context.
    rngs:
        Explicit per-run generators (length ``n_runs``) — for callers that
        pre-drew the streams, e.g. to interleave several batches' draws.
    deterministic:
        ``True`` builds a draw-free batch (canonical fold orders only):
        the lockstep-inference mode for run-batched models under
        deterministic kernels.
    """

    def __init__(
        self,
        n_runs: int,
        *,
        ctx: RunContext | None = None,
        rngs: list[np.random.Generator] | None = None,
        deterministic: bool = False,
    ) -> None:
        if n_runs < 1:
            raise ConfigurationError(f"n_runs must be >= 1, got {n_runs}")
        self.n_runs = int(n_runs)
        self.deterministic = bool(deterministic)
        if deterministic:
            self.rngs: list[np.random.Generator] | None = None
        elif rngs is not None:
            if len(rngs) != n_runs:
                raise ConfigurationError(
                    f"expected {n_runs} rngs, got {len(rngs)}"
                )
            self.rngs = list(rngs)
        else:
            ctx = ctx or get_context()
            # One scheduler stream per run, drawn in run order — exactly
            # the streams a scalar loop's runs would pin one at a time.
            self.rngs = [ctx.scheduler() for _ in range(n_runs)]
        self._plans: dict[tuple, tuple[np.ndarray, SegmentPlan]] = {}

    def plan_for(self, index: np.ndarray, n_targets: int) -> SegmentPlan:
        """A cached :class:`SegmentPlan` for ``(index, n_targets)``.

        Keyed by the index array's buffer identity — a training loop
        presents the same edge/mask arrays every epoch, so each plan's
        argsort happens once per batch.  The cache keeps a reference to the
        keyed array, which pins its buffer address for the batch lifetime.
        """
        idx = np.asarray(index)
        key = (
            idx.__array_interface__["data"][0],
            idx.shape,
            idx.strides,
            idx.dtype.str,
            int(n_targets),
        )
        hit = self._plans.get(key)
        if hit is not None:
            return hit[1]
        plan = SegmentPlan(idx, n_targets)
        self._plans[key] = (idx, plan)
        return plan


@contextlib.contextmanager
def run_batch(batch: RunBatch) -> Iterator[RunBatch]:
    """Install ``batch`` as the active lockstep run batch for the block."""
    prev = getattr(_state, "batch", None)
    _state.batch = batch
    try:
        yield batch
    finally:
        _state.batch = prev


def active_run_batch() -> RunBatch | None:
    """The innermost active :class:`RunBatch`, or ``None``."""
    return getattr(_state, "batch", None)


@contextlib.contextmanager
def use_kernel_stream(rng: np.random.Generator | None) -> Iterator[None]:
    """Pin one scheduler stream for every ND tensor kernel in the block.

    The scalar one-stream-per-run contract: a simulated training run draws
    its stream once and every non-deterministic kernel of that run —
    forward aggregations and backward scatter-adds alike — consumes it
    sequentially in op order.  ``None`` pins nothing (kernels fall back to
    one fresh context stream per call, the standalone-op behaviour).
    """
    prev = getattr(_state, "stream", None)
    _state.stream = rng
    try:
        yield
    finally:
        _state.stream = prev


def current_kernel_stream() -> np.random.Generator | None:
    """The pinned kernel stream, or ``None`` when none is pinned."""
    return getattr(_state, "stream", None)
