"""Bench E-T3: regenerate Table 3 (OpenMP normal vs ordered reductions)."""

from repro.experiments import get_experiment

from conftest import run_once


def test_table3_regeneration(benchmark, ctx, scale):
    result = run_once(benchmark, get_experiment("table3").run, scale=scale, ctx=ctx)
    assert result.extra["n_unique_ordered"] == 1
    assert result.extra["n_unique_normal"] > 1
