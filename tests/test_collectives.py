"""Multi-device collective reductions: topologies, arrival policies,
low-precision combine steps, and the ``collsweep`` experiment's contracts.

Pins the properties the module docstring promises:

* topology structure — unique edge labels, injection-edge-first paths,
  valid edge indices, the expected edge counts;
* the in-order identity limit — the deterministic policy draws nothing
  and collapses every topology to the identity combine order, which is
  what makes ring / tree / butterfly bit-exact under it;
* the per-(run, edge) stream cells — window slicing and device-subset
  invariance by construction;
* combine-step FP edge cases — signed zeros, NaN payload propagation in
  arrival order, two-rank order invariance (bitwise-commutative adds),
  single-rank degeneracy, and bf16/fp16 step-rounded (double-rounding)
  accumulation vs rounding once at the end;
* the bf16 quantiser — ties-to-even, overflow-to-inf, signed zero,
  quiet-NaN payloads, off-grid rejection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, DTypeError
from repro.fp.lowprec import (
    bf16_bits,
    bf16_fold_runs,
    bf16_ulp_distance,
    is_bf16,
    round_to_bf16,
)
from repro.fp.ulp import ulp_distance
from repro.gpusim import collectives as coll
from repro.runtime import RunContext

TOPOLOGY_NAMES = ("ring", "tree", "butterfly")
RANK_COUNTS = (1, 2, 3, 4, 5, 8)


# --------------------------------------------------------------- topologies


class TestTopologies:
    @pytest.mark.parametrize("name", TOPOLOGY_NAMES)
    @pytest.mark.parametrize("p", RANK_COUNTS)
    def test_structure_is_wellformed(self, name, p):
        topo = coll.get_topology(name)
        edges = topo.edges(p)
        paths = topo.paths(p)
        labels = [e.label for e in edges]
        assert len(set(labels)) == len(labels), "edge labels must be unique"
        assert len(paths) == p
        for rank, path in enumerate(paths):
            assert all(0 <= e < len(edges) for e in path)
            # Injection edges lead the enumeration, one per rank in rank
            # order, and every path starts with its own.
            assert path[0] == rank
            assert edges[rank].label == f"inject:{rank}"
            assert edges[rank].source == rank

    def test_ring_paths_walk_the_chain(self):
        topo = coll.get_topology("ring")
        paths = topo.paths(4)
        # rank p traverses links p..P-2 after injecting: path lengths
        # decrease by one per rank.
        assert [len(path) for path in paths] == [4, 3, 2, 1]
        labels = [e.label for e in topo.edges(4)]
        assert labels[4:] == ["link:0", "link:1", "link:2"]

    def test_tree_edge_count_is_two_per_internal_node(self):
        topo = coll.get_topology("tree")
        # P leaves -> P-1 internal nodes -> 2(P-1) child edges + P inject.
        for p in (2, 4, 5, 8):
            assert len(topo.edges(p)) == p + 2 * (p - 1)

    def test_butterfly_round_structure(self):
        topo = coll.get_topology("butterfly")
        # P=8: inject 8 + rounds 4+2+1; P=5: core 4 -> inject 5 + 2+1 + 1 pre.
        assert len(topo.edges(8)) == 8 + 7
        labels5 = [e.label for e in topo.edges(5)]
        assert "pre:4" in labels5 and len(labels5) == 5 + 3 + 1
        # The extra rank's path pre-merges into rank 0's core walk.
        assert coll.get_topology("butterfly").paths(5)[4][1] == labels5.index("pre:4")

    def test_unknown_topology_lists_known(self):
        with pytest.raises(ConfigurationError, match="butterfly"):
            coll.get_topology("hypercube")

    @pytest.mark.parametrize("bad", (0, -1, 2.5))
    def test_bad_rank_counts_raise(self, bad):
        with pytest.raises(ConfigurationError):
            coll.get_topology("ring").edges(bad)


# ----------------------------------------------------------- arrival orders


class TestArrivalOrders:
    @pytest.mark.parametrize("name", TOPOLOGY_NAMES)
    @pytest.mark.parametrize("p", RANK_COUNTS)
    def test_inorder_identity_for_every_topology(self, name, p):
        ctx = RunContext(seed=0)
        orders = coll.arrival_orders(name, p, 6, ctx, policy="inorder")
        assert np.array_equal(orders, np.tile(np.arange(p), (6, 1)))
        # Draws nothing: a second context at another seed agrees too.
        again = coll.arrival_orders(name, p, 6, RunContext(seed=99),
                                    policy="inorder")
        assert np.array_equal(orders, again)

    @pytest.mark.parametrize("name", TOPOLOGY_NAMES)
    @pytest.mark.parametrize("policy", ("uniform", "skewed"))
    def test_run_window_bit_exact(self, name, policy):
        full = coll.arrival_orders(name, 5, 12, RunContext(seed=3),
                                   policy=policy)
        window = coll.arrival_orders(name, 5, 12, RunContext(seed=3),
                                     policy=policy, run_lo=4, run_hi=10)
        assert np.array_equal(full[4:10], window)

    def test_replay_is_deterministic(self):
        a = coll.arrival_orders("tree", 6, 10, RunContext(seed=7))
        b = coll.arrival_orders("tree", 6, 10, RunContext(seed=7))
        assert np.array_equal(a, b)

    def test_uniform_policy_reorders(self):
        orders = coll.arrival_orders("tree", 5, 40, RunContext(seed=0))
        assert not np.array_equal(orders, np.tile(np.arange(5), (40, 1)))

    def test_skew_delays_loaded_sources(self):
        # Under heavy skew, high-ranked sources arrive later on average.
        orders = coll.arrival_orders("tree", 4, 400, RunContext(seed=0),
                                     policy="skewed", skew=8.0)
        position = np.argsort(orders, axis=1)  # rank -> position per run
        assert position[:, 0].mean() < position[:, 3].mean()

    def test_unknown_policy_and_bad_skew_raise(self):
        with pytest.raises(ConfigurationError, match="inorder"):
            coll.get_arrival_policy("fifo")
        with pytest.raises(ConfigurationError):
            coll.get_arrival_policy("skewed", skew=-1.0)
        with pytest.raises(ConfigurationError):
            coll.arrival_orders("ring", 4, 8, RunContext(seed=0),
                                run_lo=6, run_hi=3)


# -------------------------------------------------- combine-step edge cases


class TestCombineEdgeCases:
    def test_negative_zero_partials_fold_to_negative_zero(self):
        z = np.array([-0.0, -0.0, -0.0, -0.0])
        orders = np.array([[0, 1, 2, 3], [3, 1, 0, 2]])
        for precision in coll.PRECISIONS:
            out = coll.collective_fold_runs(z, orders, precision)
            assert np.all(out == 0.0) and np.all(np.signbit(out)), precision

    def test_mixed_sign_zeros_fold_to_positive_zero_any_order(self):
        z = np.array([-0.0, 0.0])
        orders = np.array([[0, 1], [1, 0]])
        for precision in coll.PRECISIONS:
            out = coll.collective_fold_runs(z, orders, precision)
            assert np.all(out == 0.0) and not np.any(np.signbit(out)), precision

    def test_nan_payload_follows_arrival_order(self):
        # Two distinct quiet-NaN payloads at ranks 1 and 2: the fold keeps
        # whichever NaN arrives first, exactly as a sequential reference
        # fold does — so ring-identity vs reversed order select different
        # payloads.
        na = float(np.array(0x7FF8000000000123, dtype=np.uint64).view(np.float64))
        nb = float(np.array(0x7FF80000000CAFE0, dtype=np.uint64).view(np.float64))
        partials = np.array([1.0, na, nb, 2.0])
        orders = np.array([[0, 1, 2, 3], [3, 2, 1, 0]])
        out = coll.collective_fold_runs(partials, orders, "f64")
        for row, order in enumerate(orders):
            first_nan = next(i for i in order if np.isnan(partials[i]))
            assert out[row:row + 1].view(np.uint64) == partials[
                first_nan:first_nan + 1].view(np.uint64)
        # The two arrival orders really do surface different payloads.
        assert out[0:1].view(np.uint64) != out[1:2].view(np.uint64)

    @pytest.mark.parametrize("name", TOPOLOGY_NAMES)
    def test_single_rank_collective_is_exact(self, name):
        ctx = RunContext(seed=5)
        x = ctx.data(stream=2).uniform(0, 10, 300)
        out = coll.allreduce_runs(x, ("v100",), 4, RunContext(seed=5),
                                  topology=name, policy="uniform")
        partials = coll.device_partial_sums_runs(
            x, ("v100",), 4, RunContext(seed=5))
        assert np.array_equal(out.view(np.int64),
                              partials[:, 0].view(np.int64))

    def test_two_rank_collective_is_order_invariant(self):
        # IEEE addition is bitwise commutative for non-NaN operands and a
        # single combine has no association freedom, so P=2 results cannot
        # depend on topology or policy.
        x = RunContext(seed=9).data(stream=4).standard_normal(500)
        results = [
            coll.allreduce_runs(x, ("v100", "gh200"), 6, RunContext(seed=9),
                                topology=name, policy=policy)
            for name in TOPOLOGY_NAMES
            for policy in ("inorder", "uniform", "skewed")
        ]
        base = results[0].view(np.int64)
        for r in results[1:]:
            assert np.array_equal(base, r.view(np.int64))

    @pytest.mark.parametrize("name", TOPOLOGY_NAMES)
    @pytest.mark.parametrize("precision", coll.PRECISIONS)
    def test_deterministic_policy_topology_equivalence(self, name, precision):
        x = RunContext(seed=2).data(stream=3).standard_normal(1024)
        ref = coll.allreduce_runs(x, ("v100", "gh200", "mi250x", "cpu"), 5,
                                  RunContext(seed=2), topology="ring",
                                  precision=precision, policy="inorder")
        out = coll.allreduce_runs(x, ("v100", "gh200", "mi250x", "cpu"), 5,
                                  RunContext(seed=2), topology=name,
                                  precision=precision, policy="inorder")
        assert np.array_equal(ref.view(np.int64), out.view(np.int64))

    def test_bf16_step_rounding_differs_from_round_once(self):
        # Four quarter-ulp-of-1.0 increments: the step-rounded bf16
        # accumulator loses every one to round-to-nearest, while
        # accumulating in f32 and rounding once keeps their sum (exactly
        # one ulp) — the double-rounding contrast the precision axis
        # measures.
        vals = np.array([1.0, 2.0 ** -9, 2.0 ** -9, 2.0 ** -9, 2.0 ** -9])
        orders = np.arange(5)[None, :]
        stepped = coll.collective_fold_runs(vals, orders, "bf16")
        assert stepped[0] == 1.0
        once = round_to_bf16(np.float32(vals.sum()))
        assert float(once) == 1.0 + 2.0 ** -7
        # f32 accumulation keeps the increments entirely.
        direct = coll.collective_fold_runs(vals, orders, "f32")
        assert direct[0] == np.float32(1.0 + 2.0 ** -9 * 4)

    def test_fp16_step_rounding_is_native_half(self):
        # Same construction one precision down: 2**-11 is half an ulp of
        # 1.0 in binary16, so every step ties back to even.
        vals = np.array([1.0, 2.0 ** -11, 2.0 ** -11, 2.0 ** -11, 2.0 ** -11])
        orders = np.arange(5)[None, :]
        stepped = coll.collective_fold_runs(vals, orders, "fp16")
        assert stepped[0] == 1.0
        assert np.float16(vals.sum()) == np.float16(1.0 + 2.0 ** -9)

    def test_unknown_precision_raises(self):
        with pytest.raises(ConfigurationError, match="bf16"):
            coll.collective_fold_runs(np.ones(3), np.arange(3)[None, :], "f8")


# ------------------------------------------------------- per-rank partials


class TestDevicePartials:
    def test_duplicate_devices_rejected(self):
        with pytest.raises(ConfigurationError, match="distinct"):
            coll.device_partial_sums_runs(
                np.ones(64), ("v100", "V100"), 4, RunContext(seed=0))

    def test_needs_one_element_per_rank(self):
        with pytest.raises(ConfigurationError, match="per rank"):
            coll.device_partial_sums_runs(
                np.ones(2), ("v100", "gh200", "cpu"), 4, RunContext(seed=0))
        with pytest.raises(ConfigurationError):
            coll.device_partial_sums_runs(np.ones(8), (), 4, RunContext(seed=0))

    def test_run_window_bit_exact(self):
        x = RunContext(seed=4).data(stream=6).uniform(0, 10, 1024)
        full = coll.device_partial_sums_runs(
            x, ("v100", "cpu"), 10, RunContext(seed=4))
        window = coll.device_partial_sums_runs(
            x, ("v100", "cpu"), 10, RunContext(seed=4), run_lo=3, run_hi=8)
        assert np.array_equal(full[3:8].view(np.int64), window.view(np.int64))

    def test_rank_draws_invariant_under_device_subset(self):
        # Planes are keyed by device name, so a device's schedule draws do
        # not depend on which other devices participate.  Tile one chunk
        # twice so both ranks see identical data; then swapping the
        # partner swaps the columns bit-exactly.
        chunk = RunContext(seed=8).data(stream=7).uniform(0, 10, 256)
        x = np.concatenate([chunk, chunk])
        ab = coll.device_partial_sums_runs(
            x, ("v100", "gh200"), 6, RunContext(seed=8))
        ba = coll.device_partial_sums_runs(
            x, ("gh200", "v100"), 6, RunContext(seed=8))
        assert np.array_equal(ab[:, 0].view(np.int64), ba[:, 1].view(np.int64))
        assert np.array_equal(ab[:, 1].view(np.int64), ba[:, 0].view(np.int64))

    def test_deterministic_device_pools_one_schedule(self):
        import repro.lpu  # noqa: F401 - registers the statically scheduled device

        x = RunContext(seed=0).data(stream=9).uniform(0, 10, 512)
        out = coll.device_partial_sums_runs(
            x, ("lpu", "v100"), 8, RunContext(seed=0))
        assert np.unique(out[:, 0]).size == 1


# ------------------------------------------------------------- bf16 units


class TestRoundToBf16:
    def test_ties_to_even(self):
        # bf16 ulp at 1.0 is 2**-7.  1 + 2**-8 sits exactly between 1.0
        # and 1 + 2**-7: the tie lands on the even keep bit (1.0).
        # 1 + 3*2**-8 ties the other way, up to the even 1 + 2**-6.
        assert float(round_to_bf16(np.float32(1.0 + 2.0 ** -8))) == 1.0
        assert float(round_to_bf16(np.float32(1.0 + 3 * 2.0 ** -8))) == 1.0 + 2.0 ** -6
        # Clearly above/below the midpoint round to nearest.
        assert float(round_to_bf16(np.float32(1.0 + 0.6 * 2.0 ** -7))) == 1.0 + 2.0 ** -7
        assert float(round_to_bf16(np.float32(1.0 + 0.4 * 2.0 ** -7))) == 1.0

    def test_overflow_rounds_to_infinity(self):
        assert float(round_to_bf16(np.float32(3.4e38))) == np.inf
        assert float(round_to_bf16(np.float32(-3.4e38))) == -np.inf
        assert float(round_to_bf16(np.float32(np.inf))) == np.inf

    def test_signed_zero_and_scalars_survive(self):
        out = round_to_bf16(np.float32(-0.0))
        assert out.ndim == 0 and np.signbit(out)
        assert round_to_bf16([1.5, -2.25]).shape == (2,)

    def test_nan_payload_high_bits_survive_quietly(self):
        payload = np.array(0x7F8A0000, dtype=np.uint32).view(np.float32)
        out = round_to_bf16(payload)
        bits = np.asarray(out).view(np.uint32)
        assert np.isnan(out)
        assert bits == np.uint32(0x7FCA0000)  # payload kept, quiet bit set
        # A large array of NaNs takes the same out-of-line path.
        many = round_to_bf16(np.full(16, np.nan, dtype=np.float32))
        assert np.all(np.isnan(many)) and is_bf16(many)

    def test_grid_membership_and_bits(self):
        vals = round_to_bf16(np.linspace(-5, 5, 64, dtype=np.float32))
        assert is_bf16(vals)
        assert bf16_bits(vals).dtype == np.uint16
        assert not is_bf16(np.float32(1.0 + 2.0 ** -20))
        with pytest.raises(DTypeError, match="round_to_bf16"):
            bf16_bits(np.float32(1.0 + 2.0 ** -20))

    def test_bf16_ulp_distance(self):
        one = np.float32(1.0)
        next_up = np.float32(1.0 + 2.0 ** -7)  # one bf16 ulp above 1.0
        assert bf16_ulp_distance(one, one) == 0
        assert bf16_ulp_distance(one, next_up) == 1
        assert bf16_ulp_distance(np.float32(-0.0), np.float32(0.0)) == 0
        with pytest.raises(DTypeError, match="NaN"):
            bf16_ulp_distance(round_to_bf16(np.float32(np.nan)), one)

    def test_fold_runs_shared_and_per_run_values(self):
        vals = np.array([1.0, 2.0, 4.0])
        orders = np.array([[0, 1, 2], [2, 1, 0]])
        shared = bf16_fold_runs(vals, orders)
        per_run = bf16_fold_runs(np.tile(vals, (2, 1)), orders)
        assert np.array_equal(shared, per_run)
        assert shared.dtype == np.float64
        with pytest.raises(DTypeError, match="2-D"):
            bf16_fold_runs(vals, np.array([0, 1, 2]))

    def test_fp16_ulp_distance_native(self):
        # float16 gained native support in fp.ulp for the collsweep
        # spread metric.
        a = np.float16(1.0)
        b = np.nextafter(a, np.float16(2.0), dtype=np.float16)
        assert ulp_distance(a, b) == 1


# ----------------------------------------------------- collsweep experiment


class TestCollsweepExperiment:
    _TINY = dict(n_elements=512, n_runs=12,
                 devices=("v100", "gh200", "cpu"))

    def _run(self, seed=0, **overrides):
        from repro.experiments import get_experiment

        ov = {**self._TINY, **overrides}
        return get_experiment("collsweep").run(ctx=RunContext(seed=seed), **ov)

    def test_rows_cover_the_declared_grid(self):
        res = self._run()
        assert len(res.rows) == 3 * 4  # topologies x precisions
        assert {r["topology"] for r in res.rows} == set(TOPOLOGY_NAMES)
        assert {r["precision"] for r in res.rows} == set(coll.PRECISIONS)
        for row in res.rows:
            assert row["distinct_sums"] >= 1
            assert row["spread_ulps"] >= 0.0

    def test_deterministic_reference_is_topology_equivalent(self):
        res = self._run()
        assert res.extra["deterministic_f64_topology_equivalent"] is True

    def test_inorder_policy_pins_every_precision_across_topologies(self):
        res = self._run(policy="inorder")
        by_prec: dict = {}
        for row in res.rows:
            by_prec.setdefault(row["precision"], set()).add(
                (row["distinct_sums"], row["spread_ulps"], row["mean_sum"]))
        # Identical combine orders -> identical statistics per precision.
        assert all(len(v) == 1 for v in by_prec.values())

    def test_replay_and_device_subsets_are_deterministic(self):
        for devices in (("v100", "cpu"), ("v100", "gh200", "cpu")):
            a = self._run(devices=devices)
            b = self._run(devices=devices)
            assert a.rows == b.rows and a.extra == b.extra

    def test_seed_moves_the_stochastic_rows(self):
        assert self._run(seed=0).rows != self._run(seed=1).rows
