"""Compensated and exact summation algorithms.

These are the classical remedies for FPNA (Higham, *Accuracy and Stability
of Numerical Algorithms*): they do not make a parallel reduction
deterministic by themselves, but they shrink the order-dependence to (or
below) one ulp of the exact result, and :func:`exact_sum` is fully
order-independent — useful both as a ground-truth oracle in tests and as a
"reproducible summation" baseline in the ablation benchmarks.

* :func:`two_sum` / :func:`fast_two_sum` — error-free transformations.
* :func:`kahan_sum` — compensated fold, O(1) extra state.
* :func:`neumaier_sum` — Kahan variant robust to ``|x| > |s|``.
* :func:`sorted_sum` — fold in ascending-magnitude order (error-reducing
  and deterministic for a fixed multiset, independent of input order).
* :func:`exact_sum` — ``math.fsum``: correctly rounded, order-independent.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ShapeError

__all__ = [
    "two_sum",
    "fast_two_sum",
    "kahan_sum",
    "neumaier_sum",
    "sorted_sum",
    "exact_sum",
]


def _as_1d_f64(x) -> np.ndarray:
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 1:
        raise ShapeError(f"expected a 1-D array, got shape {arr.shape}")
    return arr


def two_sum(a: float, b: float) -> tuple[float, float]:
    """Knuth's TwoSum: return ``(s, e)`` with ``s = fl(a+b)`` and
    ``a + b = s + e`` exactly.  Works for any a, b (no magnitude ordering
    requirement)."""
    s = a + b
    bb = s - a
    e = (a - (s - bb)) + (b - bb)
    return s, e


def fast_two_sum(a: float, b: float) -> tuple[float, float]:
    """Dekker's FastTwoSum; requires ``|a| >= |b|`` (or a == 0).

    One branch cheaper than :func:`two_sum`; the precondition is asserted in
    debug mode only (callers on hot paths guarantee ordering).
    """
    s = a + b
    e = b - (s - a)
    return s, e


def kahan_sum(x) -> float:
    """Kahan compensated summation (scalar loop, float64).

    Error bound: ``|err| <= 2*eps*sum(|x|)`` independent of n — versus
    ``O(n*eps)`` for the plain fold.
    """
    arr = _as_1d_f64(x)
    s = 0.0
    c = 0.0
    for v in arr.tolist():  # tolist() gives Python floats: ~3x faster loop
        y = v - c
        t = s + y
        c = (t - s) - y
        s = t
    return s


def neumaier_sum(x) -> float:
    """Neumaier's improved Kahan sum (handles ``|x_i| > |s|`` correctly).

    The classic failure case for Kahan — e.g. ``[1.0, 1e100, 1.0, -1e100]``
    — sums to exactly 2.0 here.
    """
    arr = _as_1d_f64(x)
    s = 0.0
    c = 0.0
    for v in arr.tolist():
        t = s + v
        if abs(s) >= abs(v):
            c += (s - t) + v
        else:
            c += (v - t) + s
        s = t
    return s + c


def sorted_sum(x, *, descending: bool = False) -> float:
    """Left fold in ascending-|x| order (or descending with the flag).

    For a fixed multiset of inputs the result is independent of the storage
    order (ties broken by value then sign for full determinism), making this
    a cheap "reproducible summation" strategy; ascending magnitude also
    reduces rounding error for same-sign data.
    """
    arr = _as_1d_f64(x)
    if arr.size == 0:
        return 0.0
    # Sort by (|x|, x) so equal-magnitude opposite-sign values order stably.
    order = np.lexsort((arr, np.abs(arr)))
    if descending:
        order = order[::-1]
    return float(np.add.accumulate(arr[order])[-1])


def exact_sum(x) -> float:
    """Correctly rounded sum via ``math.fsum`` — the order-independent
    oracle.  Cost is O(n) with a significant constant; use for verification
    and reproducible baselines, not hot paths."""
    arr = _as_1d_f64(x)
    return math.fsum(arr.tolist())
