"""Tensor kernels with deterministic and non-deterministic implementations.

This package reproduces the PyTorch operations the paper's Table 5 lists as
non-deterministic, each with:

* a **deterministic** path — contributions to every output element are
  folded in a canonical order (ascending source position), bitwise
  reproducible; and
* a **non-deterministic** path — the fold order is perturbed by the
  contention-serialization scheduler model
  (:mod:`repro.ops.nondet`), sampled per run from the active
  :class:`~repro.runtime.RunContext`.

Selection follows PyTorch semantics: the global switch
:func:`repro.use_deterministic_algorithms` (or each kernel's explicit
``deterministic=`` argument) chooses the path; ops *without* a
deterministic implementation raise
:class:`~repro.errors.NondeterministicError` — notably ``scatter_reduce``,
which is exactly where the paper hit PyTorch's runtime error.

Kernels operate on plain NumPy arrays; the autograd layer in
:mod:`repro.tensor` wraps them.
"""

from .segmented import SegmentPlan, segmented_fold
from .nondet import ContentionModel, OP_CONTENTION
from .registry import OpSpec, op_spec, all_op_specs, documented_nondeterministic_ops
from .scatter import scatter, scatter_runs, scatter_reduce, scatter_reduce_runs
from .index_ops import (
    index_add,
    index_add_batch,
    index_add_runs,
    index_copy,
    index_copy_runs,
    index_put,
    index_put_runs,
)
from .cumsum import cumsum, cumsum_runs
from .conv_transpose import (
    conv_transpose1d,
    conv_transpose2d,
    conv_transpose3d,
    conv_transpose_runs,
)
from .gather import gather_rows, take_along_dim

__all__ = [
    "SegmentPlan",
    "segmented_fold",
    "ContentionModel",
    "OP_CONTENTION",
    "OpSpec",
    "op_spec",
    "all_op_specs",
    "documented_nondeterministic_ops",
    "scatter",
    "scatter_runs",
    "scatter_reduce",
    "scatter_reduce_runs",
    "index_add",
    "index_add_batch",
    "index_add_runs",
    "index_copy",
    "index_copy_runs",
    "index_put",
    "index_put_runs",
    "cumsum",
    "cumsum_runs",
    "conv_transpose1d",
    "conv_transpose2d",
    "conv_transpose3d",
    "conv_transpose_runs",
    "gather_rows",
    "take_along_dim",
]
