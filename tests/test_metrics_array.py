"""Tests for the array metrics Vermv (eq. 1) and Vc (eq. 2)."""

import math

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.metrics import (
    count_variability,
    ermv,
    pairwise_count_matrix,
    pairwise_ermv_matrix,
    runs_all_unique,
    unique_output_count,
    variability_report,
)


class TestErmv:
    def test_identical_arrays_give_zero(self, rng):
        a = rng.standard_normal((4, 5))
        assert ermv(a, a.copy()) == 0.0

    def test_zero_iff_bitwise_identical(self, rng):
        a = rng.standard_normal(100)
        b = a.copy()
        b[42] = np.nextafter(b[42], np.inf)
        assert ermv(a, b) > 0.0

    def test_known_value(self):
        a = np.array([1.0, 2.0, 4.0])
        b = np.array([1.1, 2.0, 4.0])
        assert ermv(a, b) == pytest.approx(0.1 / 3, rel=1e-12)

    def test_multidimensional_normalisation(self):
        a = np.ones((2, 3))
        b = a.copy()
        b[0, 0] = 2.0
        assert ermv(a, b) == pytest.approx(1.0 / 6)

    def test_zero_reference_with_difference_is_inf(self):
        a = np.array([0.0, 1.0])
        b = np.array([0.5, 1.0])
        assert math.isinf(ermv(a, b))

    def test_zero_reference_equal_is_finite(self):
        a = np.array([0.0, 1.0])
        assert ermv(a, a.copy()) == 0.0

    def test_not_symmetric_in_general(self):
        a = np.array([1.0])
        b = np.array([2.0])
        assert ermv(a, b) == pytest.approx(1.0)
        assert ermv(b, a) == pytest.approx(0.5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            ermv(np.ones(3), np.ones(4))

    def test_empty_arrays(self):
        assert ermv(np.empty(0), np.empty(0)) == 0.0


class TestCountVariability:
    def test_identical_gives_zero(self, rng):
        a = rng.standard_normal(50)
        assert count_variability(a, a.copy()) == 0.0

    def test_fraction_of_differing_elements(self):
        a = np.zeros(10)
        b = a.copy()
        b[:3] = 1.0
        assert count_variability(a, b) == pytest.approx(0.3)

    def test_one_ulp_difference_counts(self):
        a = np.ones(4)
        b = a.copy()
        b[0] = np.nextafter(1.0, 2.0)
        assert count_variability(a, b) == pytest.approx(0.25)

    def test_negative_zero_equals_positive_zero(self):
        # Value semantics (eq. 2 uses !=), matching the paper's indicator.
        assert count_variability(np.array([0.0]), np.array([-0.0])) == 0.0

    def test_nan_never_equal(self):
        a = np.array([np.nan])
        assert count_variability(a, a.copy()) == 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            count_variability(np.ones((2, 2)), np.ones(4))


class TestVariabilityReport:
    def test_deterministic_runs_report_zero(self, rng):
        ref = rng.standard_normal(20)
        rep = variability_report(ref, [ref.copy() for _ in range(5)])
        assert rep.ermv_mean == 0.0 and rep.vc_mean == 0.0
        assert rep.n_unique == 1 and not rep.all_unique

    def test_all_unique_detection(self, rng):
        ref = rng.standard_normal(20)
        runs = [ref + i * 1e-7 for i in range(1, 4)]
        rep = variability_report(ref, runs)
        assert rep.all_unique and rep.n_unique == 3

    def test_statistics_fields(self, rng):
        ref = np.ones(10)
        runs = [ref.copy(), ref * (1 + 1e-7)]
        rep = variability_report(ref, runs)
        assert rep.n_runs == 2
        assert rep.ermv_min == 0.0
        assert rep.ermv_max == pytest.approx(1e-7, rel=1e-3)
        assert rep.vc_max == 1.0 and rep.vc_min == 0.0

    def test_empty_runs(self):
        rep = variability_report(np.ones(3), [])
        assert rep.n_runs == 0 and rep.all_unique

    def test_as_dict_round_trip(self, rng):
        rep = variability_report(np.ones(3), [np.ones(3)])
        d = rep.as_dict()
        assert d["n_runs"] == 1 and "ermv_mean" in d


class TestPairwiseAndUniqueness:
    def test_pairwise_count_matrix_symmetric_zero_diag(self, rng):
        runs = [rng.standard_normal(8) for _ in range(4)]
        m = pairwise_count_matrix(runs)
        assert m.shape == (4, 4)
        np.testing.assert_allclose(m, m.T)
        assert np.all(np.diag(m) == 0)

    def test_pairwise_ermv_matrix_diag_zero(self, rng):
        runs = [rng.standard_normal(8) for _ in range(3)]
        m = pairwise_ermv_matrix(runs)
        assert np.all(np.diag(m) == 0)
        assert np.all(m[m != 0] > 0)

    def test_unique_output_count(self):
        a = np.ones(4)
        assert unique_output_count([a, a.copy(), a + 1]) == 2

    def test_runs_all_unique_paper_result(self, rng):
        # The paper: 1000 trained models, every weight vector unique.
        runs = [rng.standard_normal(6) for _ in range(10)]
        assert runs_all_unique(runs)
        assert not runs_all_unique(runs + [runs[0].copy()])
