"""Ordered floating-point folds and tree reductions.

Floating-point addition is commutative but **not associative**: the value of
``sum(x)`` depends on the association order.  Every algorithm here computes
the same mathematical sum with a *different, precisely specified* order:

* :func:`serial_sum` — left fold in storage order (the sequential reference
  ``S_D`` of the paper).
* :func:`permuted_sum` — left fold after applying a permutation (the model
  of an asynchronous reduction, ``S_ND``).
* :func:`pairwise_sum` — balanced binary tree (the GPU shared-memory
  reduction; also NumPy's own strategy, but implemented explicitly so the
  association order is under our control, not NumPy's block size).
* :func:`block_partials` / :func:`blocked_pairwise_sum` — the two-stage GPU
  scheme: per-thread-block tree reduction followed by a combine stage.

All folds use IEEE-754 arithmetic via NumPy; results are bit-exact functions
of the association order, which is what makes the variability experiments
meaningful.

Implementation notes
--------------------
Strictly-ordered folds use :func:`numpy.add.reduce` on a 1-D array, which
NumPy documents/implements as pairwise **only** through ``np.sum``'s
``add.reduce`` fast path; to guarantee a *sequential* left fold regardless of
NumPy version we use ``np.add.accumulate`` (cumulative sum is inherently
sequential) and take the last element.  For the tree reductions we reshape
to powers of two and halve, which vectorises the per-level adds while fixing
the association order exactly.

The batched run-axis engine
---------------------------
The variability protocol (paper §III-C) repeats a non-deterministic fold
``R`` times per array.  :func:`permuted_sums` and :func:`batched_tree_fold`
fold a whole ``(R, n)`` run matrix at once, **bit-identical** per row to the
scalar :func:`permuted_sum` / :func:`tree_fold` calls: every row fold
performs the exact same IEEE-754 operation sequence, only batched (fancy
gathers are chunked, row accumulates run on contiguous 1-D rows).  The
``chunk_runs`` knob bounds the transient ``(chunk, n)`` matrices so the run
axis never blows the memory budget at ``n = 10**6``
(:data:`DEFAULT_RUN_CHUNK_ELEMENTS` elements per chunk by default; see
:func:`iter_run_chunks`).  The scheduler side of the engine — sampling all
``R`` execution orders as one matrix under the same bit-exactness contract
— lives in :class:`repro.gpusim.scheduler.WaveSchedulerBatch`.

Beyond the fold matrices, the same engine batches the per-run *block*
stage: :func:`block_partials_runs` evaluates every row's two-stage tile
partials in lockstep (the block half of the run-batched reductions,
:meth:`repro.reductions.base.ReductionImpl.sum_runs` — and the per-array
partials of the Fig 1–2 ``(arrays, runs, n)`` passes), and
:func:`repro.gpusim.atomics.batched_atomic_fold` accepts per-run ``(R,
n)`` values for the combine stage.  Above the scalar kernels, the autograd
stack carries the same run axis end to end: run-batched tensors
(:mod:`repro.tensor`), R-lockstep layers and a vectorised Adam, with each
run's ND ``index_add`` randomness drawn from that run's own scheduler
stream.  The draw-order contracts all these batched consumers rely on —
the single ``integers(len(chunk_ladder))`` draw of ``cumsum``'s chunk
ladder, the one-stream-per-solve sequence of the CG run batch, the
one-stream-per-training-run layout of the GNN stack, the anchored
per-(device, array) **device planes** of the cross-architecture sweeps
(whole run axis drawn from one cell stream: raw rotations up front, then
prefix-stable float32 block rows), the run-granular
per-(device, array, run) plane variant of the thread-order sweeps, and
the collective layer's per-(run, edge) delay cells plus per-(device,
run) rank-partial planes (:mod:`repro.gpusim.collectives` — one float32
word per edge cell, nothing under the deterministic in-order policy) —
are catalogued in :mod:`repro.gpusim.scheduler`'s module docstring.
Experiments *declare* which layout each axis uses instead of re-wiring
it: the axis-declaration contract (``Experiment.axes`` resolved by
:func:`repro.experiments.axes.plan_sweep`) maps declared order to ladder
nesting, derives every run-block base as ``anchor + row_major_flat(outer
coords) * n_runs``, excludes anchored device axes and seed-ensemble axes
from the ladder span, and hands the executor its shard windows — see the
scheduler catalogue's "axis-declaration contract" section.

The fold matrices are also the engine's compiled hot path: when the
:mod:`repro.backend` registry selects the compiled backend
(``REPRO_BACKEND=compiled|auto``), :func:`permuted_sums` and
:func:`batched_tree_fold` dispatch to C kernels implementing the
**identical accumulation-order contract** — the same strictly sequential
row scans and lockstep tree levels, in the same f32/f64 intermediate
widths, with the same −0.0/NaN/inf propagation — so the backends differ
in wall-clock only, never in bits.  RNG draws are untouched: the backend
sits strictly below the draw catalogue (orders and permutations are
sampled before dispatch).

Because every per-run stream is a pure function of ``(seed, run_index)``,
the run axis also *partitions*: the sharded executor
(:mod:`repro.harness.parallel`) splits ``R`` runs across worker processes,
each shard replaying its window of the ladder via
``RunContext(run_offset=...)`` / ``seek_runs`` and folding only its own
rows — per-run fold bits are untouched by the split (row folds depend only
on their own row), so concatenated shard results are bit-identical to the
single-process run matrix.  The ``run_offset`` extension of the contract
is documented in :mod:`repro.gpusim.scheduler` and fuzz-pinned in
``tests/test_batched_engine.py``.
"""

from __future__ import annotations

import numpy as np

from .. import backend as _backend
from ..errors import ConfigurationError, ShapeError

__all__ = [
    "serial_sum",
    "reverse_sum",
    "permuted_sum",
    "permuted_sums",
    "pairwise_sum",
    "blocked_pairwise_sum",
    "block_partials",
    "block_partials_runs",
    "tree_fold",
    "batched_tree_fold",
    "iter_run_chunks",
    "DEFAULT_RUN_CHUNK_ELEMENTS",
]

#: Default memory budget of the batched engine: max elements materialised
#: per run chunk (4M float64 elements = 32 MiB per transient matrix).
DEFAULT_RUN_CHUNK_ELEMENTS = 4 << 20


def iter_run_chunks(n_runs: int, elems_per_run: int, *, chunk_runs: int | None = None):
    """Yield ``(lo, hi)`` run-index slices bounding chunk memory.

    Parameters
    ----------
    n_runs:
        Total runs to cover.
    elems_per_run:
        Elements each run materialises in the transient chunk matrix.
    chunk_runs:
        Explicit chunk size override; default fits
        :data:`DEFAULT_RUN_CHUNK_ELEMENTS` elements per chunk (always at
        least one run per chunk).
    """
    if chunk_runs is None:
        chunk_runs = max(1, DEFAULT_RUN_CHUNK_ELEMENTS // max(elems_per_run, 1))
    if chunk_runs < 1:
        raise ConfigurationError(f"chunk_runs must be >= 1, got {chunk_runs}")
    for lo in range(0, n_runs, chunk_runs):
        yield lo, min(lo + chunk_runs, n_runs)


def _as_1d(x) -> np.ndarray:
    arr = np.asarray(x)
    if arr.ndim != 1:
        raise ShapeError(f"expected a 1-D array, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(np.float64)
    return arr


def serial_sum(x) -> float:
    """Strict left-to-right fold: ``((x0 + x1) + x2) + ...``.

    This is the deterministic reference ``S_D`` in the paper's Table 1.
    Returns the input dtype's value as a Python float (bit pattern preserved
    for float64; float32 folds are computed in float32 then widened).
    """
    arr = _as_1d(x)
    if arr.size == 0:
        return 0.0
    # np.add.accumulate is a strictly sequential scan by definition.
    return float(np.add.accumulate(arr)[-1])


def reverse_sum(x) -> float:
    """Strict right-to-left fold — the simplest non-trivial reordering."""
    arr = _as_1d(x)
    if arr.size == 0:
        return 0.0
    return float(np.add.accumulate(arr[::-1])[-1])


def permuted_sum(x, permutation) -> float:
    """Left fold of ``x[permutation]`` — the paper's model of an
    asynchronous (unspecified-order) reduction ``S_ND``.

    Parameters
    ----------
    x:
        1-D float array.
    permutation:
        Integer array containing each index exactly once.  Validated (cheap
        relative to the fold) because a silent double-count would corrupt
        every downstream variability statistic.
    """
    arr = _as_1d(x)
    perm = np.asarray(permutation)
    if perm.shape != arr.shape:
        raise ShapeError(f"permutation shape {perm.shape} != data shape {arr.shape}")
    if arr.size and (perm.min() < 0 or perm.max() >= arr.size):
        raise ConfigurationError("permutation contains out-of-range indices")
    if arr.size == 0:
        return 0.0
    return float(np.add.accumulate(arr[perm])[-1])


def permuted_sums(x, perms, *, chunk_runs: int | None = None) -> np.ndarray:
    """Left folds of ``x[perms[r]]`` for every row ``r`` — the batched
    :func:`permuted_sum`.

    Parameters
    ----------
    x:
        1-D float array (the fold runs in its dtype, as in
        :func:`permuted_sum`).
    perms:
        ``(R, n)`` integer matrix; each row is a permutation of ``x``'s
        indices.  Validated once for the whole batch.
    chunk_runs:
        Memory knob: rows gathered per chunk (see :func:`iter_run_chunks`).

    Returns
    -------
    numpy.ndarray
        ``(R,)`` float64 fold results, bit-identical per row to
        ``permuted_sum(x, perms[r])``.
    """
    arr = _as_1d(x)
    pm = np.asarray(perms)
    if pm.ndim != 2:
        raise ShapeError(f"perms must be 2-D (runs, n), got shape {pm.shape}")
    if pm.shape[1] != arr.size:
        raise ShapeError(f"perms row length {pm.shape[1]} != data length {arr.size}")
    n_runs = pm.shape[0]
    out = np.empty(n_runs, dtype=np.float64)
    if arr.size == 0:
        out.fill(0.0)
        return out
    if pm.size and (pm.min() < 0 or pm.max() >= arr.size):
        raise ConfigurationError("perms contain out-of-range indices")
    impl = _backend.resolve("permuted_sums")
    if impl is not None:
        res = impl(arr, pm)
        if res is not NotImplemented:
            return res
    for lo, hi in iter_run_chunks(n_runs, arr.size, chunk_runs=chunk_runs):
        gathered = arr[pm[lo:hi]]  # (chunk, n), contiguous rows
        for r in range(hi - lo):
            # A strictly sequential scan per row: identical association
            # order (and bits) to the scalar fold.
            out[lo + r] = np.add.accumulate(gathered[r])[-1]
    return out


def tree_fold(x) -> float:
    """Balanced binary-tree reduction of a 1-D array.

    Pads with zeros to the next power of two (adding a zero is exact in
    IEEE-754, so padding never changes the result), then repeatedly adds the
    upper half onto the lower half — exactly the shared-memory loop of the
    paper's Listing 1 (``smem[i] += smem[i + offset]``).
    """
    arr = _as_1d(x)
    n = arr.size
    if n == 0:
        return 0.0
    if n == 1:
        return float(arr[0])
    p = 1 << (int(n - 1).bit_length())
    buf = np.zeros(p, dtype=arr.dtype)
    buf[:n] = arr
    half = p // 2
    while half >= 1:
        buf[:half] = buf[:half] + buf[half : 2 * half]
        half //= 2
    return float(buf[0])


def batched_tree_fold(xs, *, chunk_runs: int | None = None) -> np.ndarray:
    """Balanced binary-tree reduction of every row of an ``(R, n)`` matrix.

    The batched :func:`tree_fold`: rows are zero-padded to the next power
    of two and halved in lockstep, so each row performs the exact
    per-level addition sequence of the scalar tree — bit-identical results,
    one vectorised pass per tree level instead of ``R``.

    Parameters
    ----------
    xs:
        ``(R, n)`` float matrix, one run per row.
    chunk_runs:
        Memory knob: rows folded per chunk (see :func:`iter_run_chunks`).

    Returns
    -------
    numpy.ndarray
        ``(R,)`` float64 tree-fold results.
    """
    mat = np.asarray(xs)
    if mat.ndim != 2:
        raise ShapeError(f"expected a 2-D (runs, n) matrix, got shape {mat.shape}")
    if not np.issubdtype(mat.dtype, np.floating):
        mat = mat.astype(np.float64)
    n_runs, n = mat.shape
    out = np.empty(n_runs, dtype=np.float64)
    if n == 0:
        out.fill(0.0)
        return out
    if n == 1:
        out[:] = mat[:, 0]
        return out
    impl = _backend.resolve("batched_tree_fold")
    if impl is not None:
        res = impl(mat)
        if res is not NotImplemented:
            return res
    p = 1 << (int(n - 1).bit_length())
    for lo, hi in iter_run_chunks(n_runs, p, chunk_runs=chunk_runs):
        buf = np.zeros((hi - lo, p), dtype=mat.dtype)
        buf[:, :n] = mat[lo:hi]
        half = p // 2
        while half >= 1:
            buf[:, :half] = buf[:, :half] + buf[:, half : 2 * half]
            half //= 2
        out[lo:hi] = buf[:, 0]
    return out


def pairwise_sum(x, block: int = 1) -> float:
    """Tree reduction with an optional serial base case of ``block`` leaves.

    ``block=1`` is the pure tree (:func:`tree_fold`).  Larger blocks model
    per-thread serial accumulation before the tree combine — the usual GPU
    kernel structure when there are more elements than threads.
    """
    arr = _as_1d(x)
    if block < 1:
        raise ConfigurationError(f"block must be >= 1, got {block}")
    if block == 1:
        return tree_fold(arr)
    n = arr.size
    if n == 0:
        return 0.0
    n_chunks = (n + block - 1) // block
    buf = np.zeros(n_chunks * block, dtype=arr.dtype)
    buf[:n] = arr
    # Serial fold within each chunk (vectorised across chunks via cumsum on
    # the trailing axis), then a tree over chunk partials.
    chunks = buf.reshape(n_chunks, block)
    partials = np.add.accumulate(chunks, axis=1)[:, -1]
    return tree_fold(partials)


def block_partials(x, n_blocks: int, block_size: int | None = None) -> np.ndarray:
    """Stage 1 of the GPU two-stage reduction: per-block tree partials.

    The array is split into ``n_blocks`` contiguous tiles (the data-blocking
    of §III-A); each tile is reduced with the shared-memory tree algorithm.
    Tiles are padded with exact zeros.

    Parameters
    ----------
    x:
        1-D array.
    n_blocks:
        Number of thread blocks (``Nb``).
    block_size:
        Elements per tile; default ``ceil(n / n_blocks)``.  When given, it
        must satisfy ``n_blocks * block_size >= n``.

    Returns
    -------
    numpy.ndarray
        ``n_blocks`` partial sums, in block-index order, dtype preserved.
    """
    arr = _as_1d(x)
    if n_blocks < 1:
        raise ConfigurationError(f"n_blocks must be >= 1, got {n_blocks}")
    n = arr.size
    if block_size is None:
        block_size = max(1, (n + n_blocks - 1) // n_blocks)
    if block_size < 1:
        raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
    if n_blocks * block_size < n:
        raise ConfigurationError(
            f"n_blocks*block_size = {n_blocks * block_size} cannot cover {n} elements"
        )
    p = 1 << (int(max(block_size - 1, 0)).bit_length() or 1)
    # Fill via a contiguous staging buffer: slicing buf[:, :block_size]
    # and reshaping would copy (non-contiguous view), losing the writes.
    staged = np.zeros(n_blocks * block_size, dtype=arr.dtype)
    staged[:n] = arr
    if p == block_size:
        # Power-of-two tiles: the staging buffer *is* the tree buffer.
        buf = staged.reshape(n_blocks, p)
    else:
        buf = np.zeros((n_blocks, p), dtype=arr.dtype)
        buf[:, :block_size] = staged.reshape(n_blocks, block_size)
    # Tree reduction across the tile axis, all blocks in lockstep — this is
    # exactly the __syncthreads-separated halving loop, vectorised.
    half = p // 2
    while half >= 1:
        buf[:, :half] = buf[:, :half] + buf[:, half : 2 * half]
        half //= 2
    return buf[:, 0].copy()


def block_partials_runs(
    xs, n_blocks: int, block_size: int | None = None, *, chunk_runs: int | None = None
) -> np.ndarray:
    """Per-block tree partials of every row of an ``(R, n)`` matrix.

    The batched :func:`block_partials` — one run per row, tiles of all runs
    tree-reduced in lockstep.  Row ``r`` of the result is bit-identical to
    ``block_partials(xs[r], n_blocks, block_size)``: same tiling, same
    zero padding, same per-level halving adds.  This is the block stage of
    the run-batched reductions (:meth:`repro.reductions.base.ReductionImpl.
    sum_runs`) that the CG run batch folds its inner products through.

    Parameters
    ----------
    xs:
        ``(R, n)`` float matrix, one run per row.
    n_blocks, block_size:
        As in :func:`block_partials`.
    chunk_runs:
        Memory knob: rows staged per chunk (see :func:`iter_run_chunks`).

    Returns
    -------
    numpy.ndarray
        ``(R, n_blocks)`` partial sums, dtype preserved.
    """
    mat = np.asarray(xs)
    if mat.ndim != 2:
        raise ShapeError(f"expected a 2-D (runs, n) matrix, got shape {mat.shape}")
    if mat.dtype.kind != "f":
        mat = mat.astype(np.float64)
    if n_blocks < 1:
        raise ConfigurationError(f"n_blocks must be >= 1, got {n_blocks}")
    n_runs, n = mat.shape
    if block_size is None:
        block_size = max(1, (n + n_blocks - 1) // n_blocks)
    if block_size < 1:
        raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
    if n_blocks * block_size < n:
        raise ConfigurationError(
            f"n_blocks*block_size = {n_blocks * block_size} cannot cover {n} elements"
        )
    p = 1 << (int(max(block_size - 1, 0)).bit_length() or 1)
    if n_runs * n_blocks * p <= DEFAULT_RUN_CHUNK_ELEMENTS and chunk_runs is None:
        spans = ((0, n_runs),)  # single chunk: skip the generator machinery
    else:
        spans = iter_run_chunks(n_runs, n_blocks * p, chunk_runs=chunk_runs)
    out = np.empty((n_runs, n_blocks), dtype=mat.dtype)
    for lo, hi in spans:
        chunk = hi - lo
        staged = np.zeros((chunk, n_blocks * block_size), dtype=mat.dtype)
        staged[:, :n] = mat[lo:hi]
        if p == block_size:
            buf = staged.reshape(chunk, n_blocks, p)
        else:
            buf = np.zeros((chunk, n_blocks, p), dtype=mat.dtype)
            buf[:, :, :block_size] = staged.reshape(chunk, n_blocks, block_size)
        half = p // 2
        while half >= 1:
            buf[:, :, :half] = buf[:, :, :half] + buf[:, :, half : 2 * half]
            half //= 2
        out[lo:hi] = buf[:, :, 0]
    return out


def blocked_pairwise_sum(x, n_blocks: int, block_size: int | None = None) -> float:
    """Deterministic two-stage reduction: tree partials + tree combine.

    This is the arithmetic performed by the paper's SPTR implementation
    (single-pass with tree reduction): the same block-tree algorithm is
    applied to the partial-sum array.
    """
    partials = block_partials(x, n_blocks, block_size)
    return tree_fold(partials)
