"""Bench FARM: cold vs warm sweep-farm grid, and stale-probe latency.

Three numbers go into ``BENCH_0007.json``:

* ``test_farm_cold_grid`` — a representative mixed grid (seven
  experiments, two of them GNN tables, the decomposing seed ensemble)
  computed from an empty cache: every cell dispatches, so this is the
  price of a from-scratch sweep.
* ``test_farm_warm_grid`` — the identical grid against the warmed cache:
  the farm answers every cell from metadata head-probes and performs
  **zero** experiment executions (asserted), so the mean is pure
  orchestration overhead — it must stay orders of magnitude below the
  cold mean.
* ``test_farm_probe_after_module_edit`` — probe latency of the same grid
  after a single-module edit (``experiments/_gnn.py`` in a throwaway
  copy of the package).  The probe itself stays warm-grid cheap, and the
  reported recompute fraction counts only the GNN tables' cells
  (asserted ``0 < fraction < 0.5``; recorded in the trajectory file's
  ``single_module_edit`` section) — the module-granular invalidation
  contract, measured.

The farm drives experiments through a serial in-process executor: worker
pools are benchmarked separately (``BENCH_0004``), and keeping dispatch
serial makes cold-vs-warm a pure cache effect instead of a pool effect.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

import repro
from repro.experiments import get_experiment
from repro.harness import ResultCache, SweepFarm, plan_grid
from repro.harness import fingerprint
from repro.runtime import RunContext

from conftest import run_once

#: Mixed grid: summation figures, CG, the power-law ablation, both GNN
#: tables and the decomposing seed ensemble — small enough for CI, broad
#: enough that closures differ per experiment.
GRID_OVERRIDES = {
    "fig4": {"n_runs": 40},
    "fig5": {"n_runs": 40},
    "cgdiv": {"n": 80, "n_runs": 3, "n_iter": 12},
    "maxvs": {"sizes": (1_000, 4_000), "n_arrays": 2, "n_runs": 40},
    "table7": {"n_models": 4, "epochs": 3},
    "table8": {},
    "seedens": {"seeds": (0, 1), "devices": ("v100", "lpu"),
                "n_elements": 2_000, "n_arrays": 2, "n_runs": 12},
}
GRID_IDS = sorted(GRID_OVERRIDES)


class SerialExecutor:
    """In-process executor with the ShardedExecutor.run contract."""

    def run(self, experiment_id, *, scale="default", seed=0, **overrides):
        return get_experiment(experiment_id).run(
            scale=scale, ctx=RunContext(seed=seed), **overrides
        )


def _grid():
    return plan_grid(GRID_IDS, overrides=GRID_OVERRIDES)


def test_farm_cold_grid(benchmark, tmp_path):
    cells = _grid()

    def cold():
        cache_dir = tmp_path / f"cache-{len(list(tmp_path.iterdir()))}"
        farm = SweepFarm(ResultCache(cache_dir), SerialExecutor())
        return farm.run(cells)

    report = run_once(benchmark, cold)
    assert report.n_executed == report.n_cells == len(cells)
    assert report.recompute_fraction == 1.0


def test_farm_warm_grid(benchmark, tmp_path):
    cells = _grid()
    cache = ResultCache(tmp_path / "cache")
    SweepFarm(cache, SerialExecutor()).run(cells)  # warm outside the round

    farm = SweepFarm(cache, SerialExecutor())
    report = benchmark(lambda: farm.run(cells))
    assert report.n_executed == 0 and report.n_hits == report.n_cells
    assert report.recompute_fraction == 0.0


def test_farm_probe_after_module_edit(benchmark, tmp_path, monkeypatch):
    src = Path(repro.__file__).resolve().parent
    copy = tmp_path / "repro"
    shutil.copytree(src, copy, ignore=shutil.ignore_patterns("__pycache__"))
    monkeypatch.setattr(fingerprint, "package_root", lambda: (copy, "repro"))

    cache = ResultCache(tmp_path / "cache")
    SweepFarm(cache, SerialExecutor()).run(_grid())  # warm under the copy
    gnn = copy / "experiments" / "_gnn.py"
    gnn.write_text(gnn.read_text() + "\n# bench: single-module edit\n")
    cells = _grid()  # keys under the edited tree

    farm = SweepFarm(cache, SerialExecutor())
    report = benchmark(lambda: farm.run(cells, probe_only=True))
    stale = {c.experiment_id for c in report.misses}
    assert stale == {"table7", "table8"}
    assert 0 < report.recompute_fraction < 0.5
    benchmark.extra_info["recompute_fraction"] = report.recompute_fraction
    benchmark.extra_info["stale_cells"] = sorted(c.cell_id for c in report.misses)
