"""Shared fixtures: isolated run contexts, clean determinism state, and the
``slow``/``bench`` marker split.

Markers
-------
``slow``
    Long-running property sweeps; skipped by default, enabled with
    ``--runslow`` (CI's full job passes it; the quick tier-1 loop does not
    need to).
``bench``
    Tests whose primary output is a timing (the ``benchmarks/`` suite uses
    pytest-benchmark; unit-level timing checks here carry this marker so
    ``-m "not bench"`` gives a pure-correctness run).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.runtime import RunContext


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked slow (long property sweeps)",
    )


def pytest_configure(config) -> None:
    config.addinivalue_line("markers", "slow: long-running test (needs --runslow)")
    config.addinivalue_line("markers", "bench: timing-focused test")


def pytest_collection_modifyitems(config, items) -> None:
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture()
def ctx() -> RunContext:
    """A fresh, fixed-seed run context per test."""
    return RunContext(seed=1234)


@pytest.fixture()
def rng(ctx) -> np.random.Generator:
    """A data generator from the test context."""
    return ctx.data()


@pytest.fixture(autouse=True)
def _reset_determinism():
    """Every test starts and ends with deterministic algorithms off."""
    repro.use_deterministic_algorithms(False)
    yield
    repro.use_deterministic_algorithms(False)


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the CLI result cache at a per-test directory so tests never
    read or write the user's ``~/.cache/repro-experiments``."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture(params=["numpy", "compiled"])
def backend(request) -> str:
    """Run the consuming test once per compute backend.

    The engine's bit-exactness suites (``test_batched_engine.py``,
    ``test_golden_experiments.py``) parametrize over this fixture so every
    equivalence property and golden pin is enforced under both the NumPy
    engine and the compiled kernels.  The compiled leg skips (not passes)
    when the toolchain is unavailable, so a broken build surfaces as
    skips, never as silently testing NumPy twice.
    """
    from repro import backend as repro_backend

    mode = request.param
    if mode == "compiled" and not repro_backend.compiled_available():
        pytest.skip(
            f"compiled backend unavailable: {repro_backend.availability_error()}"
        )
    with repro_backend.use_backend(mode):
        yield mode
