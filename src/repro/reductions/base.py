"""Base class and metadata for parallel-sum implementations."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..gpusim.device import DeviceSpec, get_device
from ..gpusim.kernel import LaunchConfig
from ..gpusim.scheduler import SchedulerParams, WaveScheduler
from ..runtime import RunContext, get_context

__all__ = ["ReductionProperties", "ReductionImpl"]


@dataclass(frozen=True)
class ReductionProperties:
    """Static properties of a reduction strategy (one Table 2 row).

    Attributes
    ----------
    name:
        Short identifier (``ao``, ``spa``, ``sptr``, ``sprg``, ``tprc``,
        ``cu``).
    long_name:
        The paper's descriptive name.
    deterministic:
        Whether the strategy is bitwise reproducible by construction.
    n_kernels:
        Kernel launches per sum (the paper lists "-" for CU; we report its
        effective single fused kernel).
    synchronization:
        The mechanism avoiding data races.
    """

    name: str
    long_name: str
    deterministic: bool
    n_kernels: int
    synchronization: str


class ReductionImpl(abc.ABC):
    """A parallel sum bound to a simulated device.

    Parameters
    ----------
    device:
        Device name or spec (default ``"v100"``).
    threads_per_block:
        Block size ``Nt``; must be a power of two for the tree kernels.
    n_blocks:
        Grid size ``Nb``; default covers the input one-element-per-thread.
    scheduler_params:
        Overrides for the arrival-time model.

    Subclasses implement :meth:`_reduce`, receiving the validated float
    array, the launch configuration and a scheduler (``None`` for
    deterministic strategies, which must not consume randomness).
    """

    properties: ReductionProperties

    def __init__(
        self,
        device: str | DeviceSpec = "v100",
        *,
        threads_per_block: int = 256,
        n_blocks: int | None = None,
        scheduler_params: SchedulerParams | None = None,
    ) -> None:
        self.device = get_device(device) if isinstance(device, str) else device
        if threads_per_block < 1 or threads_per_block & (threads_per_block - 1):
            raise ConfigurationError(
                f"threads_per_block must be a power of two, got {threads_per_block}"
            )
        self.threads_per_block = threads_per_block
        self.n_blocks = n_blocks
        self.scheduler_params = scheduler_params

    # ------------------------------------------------------------------ API
    def sum(self, x, *, ctx: RunContext | None = None, rng: np.random.Generator | None = None) -> float:
        """Compute the sum of 1-D array ``x`` on the simulated device.

        For non-deterministic strategies each call consumes a fresh
        scheduler stream from the run context (simulating a new run) unless
        an explicit ``rng`` is given.  Deterministic strategies ignore both.
        """
        arr = np.asarray(x)
        if arr.ndim != 1:
            raise ConfigurationError(f"expected 1-D input, got shape {arr.shape}")
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        if arr.size == 0:
            return 0.0
        launch = self._launch_for(arr.size)
        sched = None
        if not self.properties.deterministic:
            if rng is None:
                rng = (ctx or get_context()).scheduler()
            sched = WaveScheduler(launch, rng, self.scheduler_params)
        return self._reduce(arr, launch, sched)

    __call__ = sum

    # ----------------------------------------------------------- run batch
    def sum_runs(
        self,
        xs,
        *,
        ctx: RunContext | None = None,
        rngs: list[np.random.Generator] | None = None,
    ) -> np.ndarray:
        """Batched run-axis sums: one simulated run per row of ``xs``.

        Row ``r`` of the result is bit-identical to
        ``self.sum(xs[r], rng=rngs[r])``.  When ``rngs`` is omitted, a
        non-deterministic strategy draws one fresh scheduler stream per
        run, in run order (the engine-wide contract); passing explicit
        ``rngs`` lets a caller thread *persistent* per-run streams through
        repeated batched sums — the CG run batch, where each solve is one
        simulated run whose stream every inner product keeps consuming.
        Deterministic strategies consume no randomness either way.

        Parameters
        ----------
        xs:
            ``(R, n)`` matrix, one run's summands per row (all runs share
            one launch geometry, derived from ``n``).
        ctx:
            Run context supplying fresh streams when ``rngs`` is omitted.
        rngs:
            Optional per-run generators (non-deterministic strategies).

        Returns
        -------
        numpy.ndarray
            ``(R,)`` float64 sums.
        """
        mat = np.asarray(xs)
        if mat.ndim != 2:
            raise ConfigurationError(f"expected 2-D (runs, n) input, got shape {mat.shape}")
        if mat.dtype.kind != "f":
            mat = mat.astype(np.float64)
        n_runs, n = mat.shape
        if rngs is not None and len(rngs) != n_runs:
            raise ConfigurationError(f"expected {n_runs} rngs, got {len(rngs)}")
        if n == 0:
            return np.zeros(n_runs, dtype=np.float64)
        if not self.properties.deterministic and rngs is None:
            c = ctx or get_context()
            rngs = [c.scheduler() for _ in range(n_runs)]
        return self._reduce_runs(mat, self._launch_for(n), rngs)

    def _reduce_runs(
        self,
        mat: np.ndarray,
        launch: LaunchConfig,
        rngs: list[np.random.Generator] | None,
    ) -> np.ndarray:
        """Default run-batch: loop the scalar :meth:`_reduce` per row
        (bit-exact by construction).  Strategies with a vectorised batch
        path override this."""
        out = np.empty(mat.shape[0], dtype=np.float64)
        for r in range(mat.shape[0]):
            sched = None
            if not self.properties.deterministic:
                sched = WaveScheduler(launch, rngs[r], self.scheduler_params)
            out[r] = self._reduce(mat[r], launch, sched)
        return out

    # ------------------------------------------------------------ internals
    def _launch_for(self, n: int) -> LaunchConfig:
        # Memoised per input size: the run-batched solvers evaluate
        # thousands of same-shape sums, and launch validation/occupancy
        # would otherwise dominate the per-call cost.
        cache: dict[int, LaunchConfig] = self.__dict__.setdefault("_launch_cache", {})
        launch = cache.get(n)
        if launch is None:
            tpb = self.threads_per_block
            nb = self.n_blocks if self.n_blocks is not None else (n + tpb - 1) // tpb
            nb = max(1, nb)
            launch = LaunchConfig(
                device=self.device,
                n_blocks=nb,
                threads_per_block=tpb,
                shared_mem_bytes=min(tpb * 8, self.device.shared_mem_per_block),
            )
            cache[n] = launch
        return launch

    @abc.abstractmethod
    def _reduce(self, arr: np.ndarray, launch: LaunchConfig, sched: WaveScheduler | None) -> float:
        """Evaluate the fold; subclass responsibility."""

    # ------------------------------------------------------------- niceties
    @property
    def name(self) -> str:
        """Short strategy name."""
        return self.properties.name

    @property
    def deterministic(self) -> bool:
        """Whether this strategy is bitwise reproducible."""
        return self.properties.deterministic

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(device={self.device.name!r}, "
            f"Nt={self.threads_per_block}, Nb={self.n_blocks})"
        )
