#!/usr/bin/env python
"""Iterative-solver error accumulation under FPNA (paper SI motivation).

The paper's introduction cites conjugate gradient on massively
multithreaded machines, where FPNA errors compound across iterations
(Villa et al. measured up to ~20% divergence after 6-7 iterations on the
Cray XMT).  This example solves one SPD system repeatedly with

* a deterministic reduction (SPTR) — trajectories bitwise identical,
* the non-deterministic SPA reduction — trajectories diverge, and the
  run-to-run divergence grows with iteration count,

and prints the divergence curve plus the effect on a tolerance-based
convergence test (iteration counts can differ run to run).

Run:  python examples/cg_error_accumulation.py
"""

import numpy as np

import repro
from repro.solvers import conjugate_gradient, iterate_divergence, spd_test_matrix


def main() -> None:
    ctx = repro.seed_all(0)
    n = 400
    A = spd_test_matrix(n, cond=1e4, rng=ctx.data(1))
    b = ctx.data(2).standard_normal(n)

    det = repro.get_reduction("sptr", threads_per_block=64)
    nondet = repro.get_reduction("spa", threads_per_block=64)

    # -- deterministic baseline: bitwise identical trajectories ------------
    runs = [
        conjugate_gradient(A, b, reduction=det, tol=1e-10, ctx=ctx)
        for _ in range(3)
    ]
    identical = all(np.array_equal(r.x, runs[0].x) for r in runs)
    print(f"deterministic CG: {runs[0].n_iter} iterations, "
          f"3 runs bitwise identical: {identical}")

    # -- non-deterministic: growing divergence ------------------------------
    div = iterate_divergence(A, b, reduction=nondet, n_runs=5, n_iter=40, ctx=ctx)
    print("\nrun-to-run iterate divergence (max relative L2 vs run 0):")
    for k in range(0, len(div), 5):
        bar = "#" * int(min(60, 2 * max(0, np.log10(max(div[k], 1e-18)) + 18)))
        print(f"  iter {k + 1:3d}: {div[k]:.3e} {bar}")
    print(f"\ndivergence grew {div[-1] / max(div[0], 1e-300):.1f}x "
          f"from iteration 1 to {len(div)}")

    # -- consequence: convergence verdicts can flicker ----------------------
    iters = [
        conjugate_gradient(A, b, reduction=nondet, tol=1e-13, ctx=ctx).n_iter
        for _ in range(10)
    ]
    print(f"\nND iteration counts to tol=1e-13 over 10 runs: {sorted(set(iters))}")
    print("(a deterministic reduction pins this to a single number;")
    print(" flickering counts are what breaks iteration-budget CI checks)")


if __name__ == "__main__":
    main()
