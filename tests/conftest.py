"""Shared fixtures: isolated run contexts and clean determinism state."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.runtime import RunContext


@pytest.fixture()
def ctx() -> RunContext:
    """A fresh, fixed-seed run context per test."""
    return RunContext(seed=1234)


@pytest.fixture()
def rng(ctx) -> np.random.Generator:
    """A data generator from the test context."""
    return ctx.data()


@pytest.fixture(autouse=True)
def _reset_determinism():
    """Every test starts and ends with deterministic algorithms off."""
    repro.use_deterministic_algorithms(False)
    yield
    repro.use_deterministic_algorithms(False)
