"""Tests for the Tensor class and reverse-mode autograd."""

import numpy as np
import pytest

import repro
from repro.errors import AutogradError, ShapeError
from repro.tensor import Tensor, gradcheck, no_grad, tensor


class TestTensorBasics:
    def test_float64_narrowed_to_float32(self):
        assert Tensor(np.zeros(3)).dtype == np.float32

    def test_explicit_dtype_preserved(self):
        assert Tensor(np.zeros(3), dtype=np.float64).dtype == np.float64

    def test_int_input_promoted(self):
        assert Tensor([1, 2, 3]).dtype == np.float32

    def test_item_scalar_only(self):
        assert Tensor([2.0]).item() == 2.0
        with pytest.raises(ShapeError):
            Tensor([1.0, 2.0]).item()

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3) and t.ndim == 2 and t.size == 6

    def test_detach_cuts_graph(self):
        t = Tensor([1.0], requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad

    def test_factory(self):
        t = tensor([1.0], requires_grad=True)
        assert t.requires_grad


class TestArithmeticGradients:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_array_equal(a.grad, [1, 1])
        np.testing.assert_array_equal(b.grad, [1, 1])

    def test_mul_backward(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([5.0], requires_grad=True)
        (a * b).sum().backward()
        assert a.grad[0] == 5.0 and b.grad[0] == 2.0

    def test_broadcast_backward_sums_over_axes(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_array_equal(b.grad, [3, 3])

    def test_scalar_broadcast(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        (a + 1.0).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 2)))

    def test_sub_div_neg_pow(self):
        a = Tensor([4.0], requires_grad=True)
        y = (-a) / 2.0 - 1.0 + a**2
        y.sum().backward()
        assert a.grad[0] == pytest.approx(-0.5 + 8.0)

    def test_matmul_backward(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3, 4)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_array_equal(a.grad, np.full((2, 3), 4))
        np.testing.assert_array_equal(b.grad, np.full((3, 4), 2))

    def test_shared_parent_accumulates(self):
        a = Tensor([3.0], requires_grad=True)
        (a * a).sum().backward()
        assert a.grad[0] == 6.0

    def test_diamond_graph(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3.0
        c = a * 4.0
        (b + c).sum().backward()
        assert a.grad[0] == 7.0

    def test_rsub_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        (1.0 - a).sum().backward()
        assert a.grad[0] == -1.0
        a.zero_grad()
        (1.0 / a).sum().backward()
        assert a.grad[0] == pytest.approx(-0.25)


class TestReductionsAndShaping:
    def test_sum_axis_keepdim(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.sum(dim=1, keepdim=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 3)))

    def test_mean_gradient_scaling(self):
        a = Tensor(np.ones(4), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 0.25))

    def test_reshape_round_trip(self):
        a = Tensor(np.arange(6, dtype=np.float32), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones(6))

    def test_transpose(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        assert a.T.shape == (3, 2)
        a.T.sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 3)))

    def test_transpose_rejects_non_2d(self):
        with pytest.raises(ShapeError):
            Tensor(np.ones(3)).T


class TestNonlinearities:
    def test_relu_gradient_mask(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        a.relu().sum().backward()
        np.testing.assert_array_equal(a.grad, [0, 1])

    def test_log_softmax_rows_sum_to_one(self, rng):
        x = Tensor(rng.standard_normal((4, 7)).astype(np.float32))
        p = np.exp(x.log_softmax(dim=-1).numpy())
        np.testing.assert_allclose(p.sum(axis=-1), 1.0, rtol=1e-5)

    def test_log_softmax_gradient_zero_sum(self, rng):
        x = Tensor(rng.standard_normal((2, 5)).astype(np.float32), requires_grad=True)
        x.log_softmax()[0, 0].sum().backward()
        np.testing.assert_allclose(x.grad.sum(axis=-1), [0, 0], atol=1e-6)

    def test_exp_log_tanh_sigmoid_gradients(self):
        for name in ("exp", "log", "tanh", "sigmoid"):
            a = Tensor([0.5], requires_grad=True)
            getattr(a, name)().sum().backward()
            assert np.isfinite(a.grad[0])


class TestBackwardSemantics:
    def test_non_scalar_backward_needs_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(AutogradError):
            (a * 2).backward()

    def test_explicit_grad_accepted(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a * 2).backward(np.array([1.0, 2.0, 3.0], dtype=np.float32))
        np.testing.assert_array_equal(a.grad, [2, 4, 6])

    def test_backward_on_leaf_without_grad_raises(self):
        with pytest.raises(AutogradError):
            Tensor([1.0]).backward()

    def test_grad_shape_mismatch_raises(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(AutogradError):
            (a * 2).backward(np.ones(4, dtype=np.float32))

    def test_repeated_backward_accumulates_on_leaf(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        (a * 2).sum().backward()
        assert a.grad[0] == 4.0

    def test_no_grad_disables_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad


class TestIndexingOps:
    def test_gather_rows_forward(self, rng):
        x = Tensor(rng.standard_normal((5, 3)).astype(np.float32), requires_grad=True)
        idx = np.array([1, 1, 4])
        np.testing.assert_array_equal(x.gather_rows(idx).numpy(), x.numpy()[idx])

    def test_gather_rows_backward_is_index_add(self, rng):
        repro.use_deterministic_algorithms(True)
        x = Tensor(np.zeros((3, 2), dtype=np.float32), requires_grad=True)
        out = x.gather_rows(np.array([0, 0, 2]))
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, [[2, 2], [0, 0], [1, 1]])

    def test_index_add_forward_respects_global_flag(self, ctx, rng):
        repro.use_deterministic_algorithms(True)
        base = Tensor(np.zeros((10, 4), dtype=np.float32))
        src = Tensor(rng.standard_normal((200, 4)).astype(np.float32))
        idx = rng.integers(0, 10, 200)
        outs = {base.index_add(idx, src).numpy().tobytes() for _ in range(3)}
        assert len(outs) == 1

    def test_index_add_backward_gathers(self):
        base = Tensor(np.zeros((3, 2), dtype=np.float32), requires_grad=True)
        src = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        out = base.index_add(np.array([2, 2]), src)
        out.sum().backward()
        np.testing.assert_array_equal(base.grad, np.ones((3, 2)))
        np.testing.assert_array_equal(src.grad, np.ones((2, 2)))

    def test_getitem_gradient(self):
        a = Tensor(np.arange(4, dtype=np.float32), requires_grad=True)
        a[1:3].sum().backward()
        np.testing.assert_array_equal(a.grad, [0, 1, 1, 0])


class TestGradcheck:
    def test_passes_for_composite_function(self, rng):
        a = Tensor(rng.standard_normal((3, 4)).astype(np.float64), requires_grad=True, dtype=np.float64)
        b = Tensor(rng.standard_normal((4, 2)).astype(np.float64), requires_grad=True, dtype=np.float64)

        def fn(a, b):
            return ((a @ b).relu() * 2.0).sum()

        assert gradcheck(fn, (a, b))

    def test_catches_wrong_gradient(self):
        a = Tensor(np.array([0.7]), requires_grad=True, dtype=np.float64)

        def bad(a):
            # exp value with a deliberately wrong backward via detach abuse
            out = a.exp()
            out._grad_fn = lambda g: (g * 0.0,)
            return out.sum()

        with pytest.raises(AutogradError):
            gradcheck(bad, (a,))

    def test_rejects_non_scalar_output(self):
        a = Tensor(np.ones(3), requires_grad=True, dtype=np.float64)
        with pytest.raises(AutogradError):
            gradcheck(lambda t: t * 2, (a,))

    def test_rejects_non_grad_inputs(self):
        with pytest.raises(AutogradError):
            gradcheck(lambda t: t.sum(), (Tensor(np.ones(2)),))
