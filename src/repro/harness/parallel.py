"""Sharded multi-process experiment executor.

Partitions an experiment's ``R`` simulated runs into per-worker shards,
executes them in a spawn-safe :mod:`multiprocessing` pool, and merges the
shard payloads into the **bit-exact** single-process result.  The safety
argument is the engine-wide one-stream-per-run RNG contract
(:mod:`repro.gpusim.scheduler`): scheduler streams are pure functions of
``(seed, run_index)``, so a shard that seeks the ladder to its run window
draws exactly the streams the serial experiment would, and per-run
payloads concatenate (:mod:`repro.experiments.sharding`) into the serial
payload bit for bit.  ``tests/test_sharded_executor.py`` pins this for
every shardable experiment.

Workers default to ``REPRO_WORKERS`` (else 1 — serial).  The pool is
created lazily and reused across experiments (``run-all`` pays the spawn
cost once); use the executor as a context manager, or call
:meth:`ShardedExecutor.close`.

Example
-------
>>> from repro.harness.parallel import ShardedExecutor
>>> with ShardedExecutor(workers=4) as ex:
...     result = ex.run("fig3", scale="default", seed=0)
>>> # result.rows is bit-identical to get_experiment("fig3").run(...)

Non-shardable experiments (no ``shardable_axes``) transparently fall back
to serial execution, so ``run-all --workers N`` is always safe.
"""

from __future__ import annotations

import multiprocessing
import os
import time

from .. import backend as _backend
from ..errors import ConfigurationError, ExperimentError
from ..experiments.axes import plan_sweep
from ..experiments.base import Experiment, ExperimentResult, get_experiment
from ..experiments.sharding import plan_shards
from ..runtime import RunContext

__all__ = ["ShardedExecutor", "default_workers", "plan_shards"]

#: Environment variable supplying the default worker count.
WORKERS_ENV = "REPRO_WORKERS"


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (unset/empty = 1).

    A malformed or non-positive value raises a named
    :class:`~repro.errors.ConfigurationError` — silently degrading
    ``REPRO_WORKERS=eight`` to serial execution hid the typo behind an
    8x wall-clock surprise.
    """
    raw = os.environ.get(WORKERS_ENV, "")
    if not raw.strip():
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{WORKERS_ENV} must be an integer worker count, got {raw!r}"
        ) from None
    if workers < 1:
        raise ConfigurationError(f"{WORKERS_ENV} must be >= 1, got {workers}")
    return workers


def _worker_initializer(backend_mode: str) -> None:
    """Pool initializer: forward the parent's backend selection.

    ``spawn`` workers re-import the library with a fresh environment, so a
    parent whose backend was selected via :func:`repro.backend.set_backend`
    (e.g. the CLI ``--backend`` flag) would otherwise shard under a
    different backend than it merges under.  Bits are backend-invariant,
    but the selection contract — and cache-key hygiene — must hold in every
    process of the pool.
    """
    _backend.set_backend(backend_mode)


def _shard_task(task: tuple) -> dict:
    """Worker entry point: evaluate one shard's run window.

    Module-level (picklable by qualified name) and parameterised only by
    primitives, so it survives the ``spawn`` start method — each worker
    re-imports the library and rebuilds the experiment registry.
    """
    experiment_id, scale, seed, overrides, lo, hi = task
    exp = get_experiment(experiment_id)
    params = exp.resolve_params(scale, overrides)
    return exp.shard_run(RunContext(seed=seed), params, lo, hi)


class ShardedExecutor:
    """Runs experiments across a multiprocessing pool with bit-exact merging.

    Parameters
    ----------
    workers:
        Shard/worker count; ``None`` reads ``REPRO_WORKERS`` (default 1).
        ``workers <= 1`` executes everything serially in-process.
    start_method:
        Multiprocessing start method; ``"spawn"`` (the default) is the
        only portable choice (fork would inherit live NumPy state), and
        what the executor is tested with.
    """

    def __init__(self, workers: int | None = None, *, start_method: str = "spawn") -> None:
        self.workers = default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {self.workers}")
        self._start_method = start_method
        self._pool = None
        #: Experiment executions this executor has performed (serial or
        #: pooled).  A cache-answered job never increments it, so "the
        #: warm grid touched no worker" is an assertable property — the
        #: service's ``/stats`` and the CI smoke both read it.
        self.dispatches = 0
        #: Spawn pools created over this executor's lifetime.  A
        #: long-lived executor serving many sequential jobs must reuse
        #: one pool (no per-job pool churn) — pinned by the longevity
        #: test; the service keeps one executor alive for its whole
        #: lifetime.
        self.pools_created = 0

    # ------------------------------------------------------------------ pool
    def _get_pool(self):
        if self._pool is None:
            mp_ctx = multiprocessing.get_context(self._start_method)
            self._pool = mp_ctx.Pool(
                processes=self.workers,
                initializer=_worker_initializer,
                initargs=(_backend.backend_mode(),),
            )
            self.pools_created += 1
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------- run
    def plan(self, exp: Experiment, params: dict) -> list[tuple[int, int]] | None:
        """Shard windows for one experiment, or ``None`` when it must run
        serially (not shardable, one worker, or a degenerate run count).

        Declared experiments (``exp.axes``) get their windows from the
        sweep planner (:func:`~repro.experiments.axes.plan_sweep`), which
        also validates the declaration — a multi-shardable product raises
        a named error there.  Legacy ``shardable_axes`` declarations are
        windowed directly, and more than one legacy axis is rejected
        explicitly instead of silently sharding the first.
        """
        if self.workers <= 1:
            return None
        if exp.axes:
            sweep = plan_sweep(exp, params)
            if sweep.shard_axis is None:
                return None
            shards = sweep.shard_windows(self.workers)
        else:
            axes = exp.shardable_axes
            if not axes:
                return None
            if len(axes) > 1:
                raise ExperimentError(
                    f"experiment {exp.experiment_id!r} declares {len(axes)} "
                    "shardable axes; the executor windows exactly one — "
                    "declare the product via Experiment.axes instead"
                )
            total = int(params[axes[0].param])
            shards = plan_shards(
                total, self.workers, min_per_shard=axes[0].min_per_shard
            )
        return shards if len(shards) > 1 else None

    def run(
        self,
        experiment_id: str,
        *,
        scale: str = "default",
        seed: int = 0,
        **overrides,
    ) -> ExperimentResult:
        """Run one experiment, sharded when possible.

        The returned result is bit-identical (``rows``/``extra``/``notes``)
        to ``get_experiment(experiment_id).run(scale=..., ctx=
        RunContext(seed))`` — sharding changes wall-clock, never bits.
        ``result.meta["workers"]``/``["shards"]`` record how it ran.
        """
        exp = get_experiment(experiment_id)
        params = exp.resolve_params(scale, overrides)
        self.dispatches += 1
        shards = self.plan(exp, params)
        if shards is None:
            result = exp.run(scale=scale, ctx=RunContext(seed=seed), **overrides)
            result.meta.update(workers=1, shards=1)
            return result
        start = time.perf_counter()
        tasks = [
            (experiment_id, scale, seed, dict(overrides), lo, hi)
            for lo, hi in shards
        ]
        parts = self._get_pool().map(_shard_task, tasks)
        payload = exp.merge_shards(params, parts)
        rows, notes, extra = exp.finalize(RunContext(seed=seed), params, payload)
        elapsed = time.perf_counter() - start
        return ExperimentResult(
            experiment_id=exp.experiment_id,
            title=exp.title,
            scale=scale,
            params=params,
            rows=rows,
            notes=notes,
            elapsed_s=elapsed,
            extra=extra,
            seed=seed,
            meta={"workers": self.workers, "shards": len(shards)},
        )
