"""Bench E-F2: regenerate Fig 2 (AO Vs PDF is not normal)."""

from repro.experiments import get_experiment

from conftest import run_once


def test_fig2_regeneration(benchmark, ctx, scale):
    result = run_once(benchmark, get_experiment("fig2").run, scale=scale, ctx=ctx)
    rows = {r["implementation"]: r for r in result.rows}
    # The Gaussian-noise assumption fails for AO but holds for SPA.
    assert rows["AO"]["median_kl_to_normal"] > rows["SPA"]["median_kl_to_normal"]
    assert rows["SPA"]["frac_arrays_normal_by_kl"] >= 0.5
    # AO's spread is wider (paper: +-1000e-16 vs +-400e-16 axes).
    assert rows["AO"]["vs_std_x1e16"] > rows["SPA"]["vs_std_x1e16"]
