"""Functional NN operations."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, ShapeError
from ..runtime import get_context
from ..tensor import Tensor

__all__ = ["relu", "log_softmax", "nll_loss", "cross_entropy", "dropout"]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def log_softmax(x: Tensor, dim: int = -1) -> Tensor:
    """Log-softmax along ``dim``."""
    return x.log_softmax(dim=dim)


def nll_loss(log_probs: Tensor, target, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood of integer targets.

    Parameters
    ----------
    log_probs:
        ``(N, C)`` log-probabilities (output of :func:`log_softmax`).
    target:
        ``(N,)`` integer class ids.
    reduction:
        ``"mean"`` or ``"sum"``.
    """
    t = np.asarray(target)
    lead = 1 if log_probs.runs is not None else 0
    if log_probs.ndim != 2 + lead:
        raise ShapeError(f"log_probs must be (N, C), got {log_probs.shape}")
    n, c = log_probs.shape[lead:]
    if t.shape != (n,):
        raise ShapeError(f"target must be ({n},), got {t.shape}")
    if t.size and (t.min() < 0 or t.max() >= c):
        raise ConfigurationError(f"target classes must be in [0, {c})")
    if reduction not in ("mean", "sum"):
        raise ConfigurationError(f"unknown reduction {reduction!r}")
    if lead:
        # Lockstep runs: pick each run's target log-probs and reduce to one
        # scalar per run — bit-identical per run to the scalar loss.  The
        # pick's mixed basic/advanced indexing returns a stride-transposed
        # copy; contiguous() restores the scalar twin's row layout so the
        # per-run pairwise sums fold identically.
        picked = log_probs[(slice(None), np.arange(n), t)].contiguous()
        loss = -(picked.sum(dim=-1))
    else:
        picked = log_probs[np.arange(n), t]
        loss = -(picked.sum())
    if reduction == "mean":
        loss = loss * (1.0 / max(n, 1))
    return loss


def cross_entropy(logits: Tensor, target, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy from raw logits."""
    return nll_loss(log_softmax(logits, dim=-1), target, reduction=reduction)


def dropout(x: Tensor, p: float = 0.5, training: bool = True) -> Tensor:
    """Inverted dropout using the run context's *init* stream.

    The mask stream is run-stable on purpose: the paper isolates kernel
    non-determinism by fixing all RNG-based stochasticity, and dropout
    randomness would otherwise swamp the FPNA signal.
    """
    if not 0.0 <= p < 1.0:
        raise ConfigurationError(f"dropout p must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    rng = get_context().init(stream=0xD209)
    # The mask covers the logical shape only: lockstep runs share the one
    # run-stable mask their scalar twins would each draw (broadcast over
    # the run axis), keeping batched and scalar bits identical.
    shape = x.shape[1:] if x.runs is not None else x.shape
    mask = (rng.random(shape) >= p).astype(x.dtype) / (1.0 - p)
    return x * Tensor(mask, dtype=x.dtype)
