"""Max |Vs| growth with array size — the paper's power-law fit (§III-C).

``Max |Vs|`` over many SPA runs, as a function of n, fits ``beta * n**alpha``
with ``alpha ~ 0.5`` for uniform U(0, 10) inputs and a larger exponent for
normal N(0, 1) inputs (near-cancelling sums make the relative metric
heavier-tailed) — "the range of the numbers also plays a role".

Each ``(distribution, size)`` cell runs as one batched ``(arrays, runs)``
pass on the run-axis engine (bit-identical to the per-array loop it
replaced — array-major stream consumption), and the run axis shards: the
serial ladder is one block of ``n_arrays * n_runs`` scheduler streams per
cell in sweep order, so a shard pre-draws its run window of every array's
sub-block (``seek`` + ``scheduler``) exactly like fig1.
"""

from __future__ import annotations

import numpy as np

from ..metrics.powerlaw import fit_power_law
from ..runtime import RunContext
from .base import ShardAxis, ShardableExperiment, register
from .sharding import RunConcat
from ._sumdist import sample_array, spa_vs_samples_arrays

__all__ = ["MaxVsPowerLaw"]


class MaxVsPowerLaw(ShardableExperiment):
    """Fits Max|Vs|(n) = beta * n^alpha for uniform and normal inputs."""

    experiment_id = "maxvs"
    title = "Max |Vs| vs array size: power-law fit (paper SIII-C)"
    shardable_axes = (ShardAxis("n_runs"),)

    def params_for(self, scale: str) -> dict:
        if scale == "paper":
            return {
                "sizes": (1_000, 10_000, 100_000, 1_000_000),
                "n_arrays": 20, "n_runs": 1_000,
                "device": "v100", "threads_per_block": 64,
            }
        return {
            "sizes": (1_000, 4_000, 16_000, 64_000),
            "n_arrays": 4, "n_runs": 150,
            "device": "v100", "threads_per_block": 64,
        }

    def shard_run(self, ctx: RunContext, params: dict, lo: int, hi: int) -> dict:
        n_arrays, n_runs, r = params["n_arrays"], params["n_runs"], hi - lo
        base = ctx.peek_run_counter()
        cells: dict = {}
        for dist in ("uniform", "normal"):
            data_rng = ctx.data(stream=11 + (dist == "normal"))
            per_size = []
            for n in params["sizes"]:
                xs = np.stack([
                    sample_array(data_rng, n, dist) for _ in range(n_arrays)
                ])
                # Serial ladder: array a of this cell owns streams
                # [base + a*n_runs, base + (a+1)*n_runs); pre-draw each
                # array's [lo, hi) window explicitly.
                rngs = []
                for a in range(n_arrays):
                    ctx.seek_runs(base + a * n_runs + lo)
                    rngs.extend(ctx.scheduler() for _ in range(r))
                vs_mat = spa_vs_samples_arrays(
                    xs, r, ctx,
                    device=params["device"],
                    threads_per_block=params["threads_per_block"],
                    rngs=rngs,
                )
                per_size.append({"vs": RunConcat(vs_mat, axis=1)})
                base += n_arrays * n_runs
            cells[dist] = per_size
        ctx.seek_runs(base)
        return cells

    def finalize(self, ctx: RunContext, params: dict, payload: dict):
        rows: list[dict] = []
        fits: dict = {}
        for dist in ("uniform", "normal"):
            maxima = []
            for n, cell in zip(params["sizes"], payload[dist]):
                m = float(np.max(np.abs(cell["vs"])))
                maxima.append(m)
                rows.append({"distribution": dist, "size": n, "max_abs_vs": m})
            fit = fit_power_law(params["sizes"], maxima)
            fits[dist] = {"alpha": fit.alpha, "beta": fit.beta, "r_squared": fit.r_squared}
            rows.append(
                {
                    "distribution": dist,
                    "size": "FIT",
                    "max_abs_vs": f"alpha={fit.alpha:.3f}, beta={fit.beta:.3e}, R2={fit.r_squared:.3f}",
                }
            )
        notes = (
            "Shape check: alpha(uniform) ~ 0.5 (Max|Vs| proportional to sqrt(n)); "
            "alpha(normal) > alpha(uniform), as the paper reports."
        )
        return rows, notes, {"fits": fits}


register(MaxVsPowerLaw())
