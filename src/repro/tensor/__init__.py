"""NumPy-backed tensor with reverse-mode autograd.

A deliberately small but complete autograd engine in the PyTorch idiom:
float32 default dtype, ``requires_grad`` / ``backward()`` / ``no_grad``,
broadcasting-aware gradients, and — the part that matters for this paper —
indexing ops whose *backward* passes route through the non-deterministic
scatter kernels of :mod:`repro.ops`, so training pipelines inherit exactly
the run-to-run variability the paper measures (§V: the GraphSAGE model's
only ND source is ``index_add``).

Tensors may carry a leading **run axis** (``runs=R``): ``R`` simulated
runs advancing in lockstep through one batched computation, bit-identical
per run to ``R`` scalar executions — the autograd face of the batched
run-axis engine.  :mod:`repro.tensor.runbatch` holds the per-batch state
(one scheduler stream per run, plan cache) and the scalar twin's pinned
kernel stream.
"""

from .tensor import Tensor, no_grad, is_grad_enabled, tensor
from .runbatch import (
    RunBatch,
    active_run_batch,
    current_kernel_stream,
    run_batch,
    use_kernel_stream,
)
from .gradcheck import gradcheck

__all__ = [
    "Tensor",
    "tensor",
    "no_grad",
    "is_grad_enabled",
    "gradcheck",
    "RunBatch",
    "run_batch",
    "active_run_batch",
    "use_kernel_stream",
    "current_kernel_stream",
]
