"""Tests for the graph substrate, synthetic Cora, and GraphSAGE (SV)."""

import numpy as np
import pytest

import repro
from repro.errors import ConfigurationError, GraphError
from repro.graph import Graph, cora_like, train_val_test_split
from repro.nn import GraphSAGE, SAGEConv
from repro.runtime import RunContext
from repro.tensor import Tensor


class TestGraph:
    def test_symmetric_edge_index(self):
        g = Graph(4, [[0, 1], [1, 2]])
        assert g.num_edges == 2
        assert g.num_directed_edges == 4
        adj = g.adjacency_matrix()
        np.testing.assert_array_equal(adj, adj.T)

    def test_degree(self):
        g = Graph(4, [[0, 1], [1, 2], [1, 3]])
        np.testing.assert_array_equal(g.degree(), [1, 3, 1, 1])

    def test_neighbors_sorted(self):
        g = Graph(5, [[1, 4], [1, 0], [1, 2]])
        np.testing.assert_array_equal(g.neighbors(1), [0, 2, 4])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [[1, 1]])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [[0, 1], [1, 0]])

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [[0, 5]])

    def test_empty_graph(self):
        g = Graph(3, [])
        assert g.num_edges == 0 and g.edge_index.shape == (2, 0)

    def test_neighbor_bounds(self):
        with pytest.raises(GraphError):
            Graph(3, []).neighbors(7)


class TestCoraLike:
    def test_full_shape_matches_cora(self):
        ds = cora_like(ctx=RunContext(0))
        assert ds.num_nodes == 2708
        assert ds.graph.num_edges == 5429
        assert ds.num_features == 1433
        assert ds.num_classes == 7

    def test_masks_disjoint(self):
        ds = cora_like(num_nodes=300, num_edges=500, num_features=32, ctx=RunContext(0))
        overlap = ds.train_mask & ds.val_mask | ds.train_mask & ds.test_mask
        assert not overlap.any()

    def test_features_binary_sparse(self):
        ds = cora_like(num_nodes=200, num_edges=300, num_features=64, ctx=RunContext(0))
        vals = np.unique(ds.features)
        assert set(vals.tolist()) <= {0.0, 1.0}
        assert ds.features.mean() < 0.5

    def test_assortative_edges(self):
        ds = cora_like(num_nodes=400, num_edges=800, num_features=16,
                       assortativity=0.9, ctx=RunContext(0))
        src, dst = ds.graph.edge_index
        same = float(np.mean(ds.labels[src] == ds.labels[dst]))
        assert same > 0.6

    def test_generation_deterministic_given_seed(self):
        a = cora_like(num_nodes=100, num_edges=150, num_features=16, ctx=RunContext(4))
        b = cora_like(num_nodes=100, num_edges=150, num_features=16, ctx=RunContext(4))
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.graph.edge_index, b.graph.edge_index)

    def test_impossible_edge_count_rejected(self):
        with pytest.raises(GraphError):
            cora_like(num_nodes=4, num_edges=100, ctx=RunContext(0))

    def test_split_validation(self):
        with pytest.raises(ConfigurationError):
            train_val_test_split(10, 5, 5, 5, np.random.default_rng(0))


@pytest.fixture()
def small_ds():
    return cora_like(num_nodes=120, num_edges=240, num_features=24,
                     num_classes=4, ctx=RunContext(0))


class TestSAGEConv:
    def test_output_shape(self, small_ds):
        conv = SAGEConv(24, 8, rng=np.random.default_rng(0))
        out = conv(Tensor(small_ds.features), small_ds.graph.edge_index)
        assert out.shape == (120, 8)

    def test_mean_aggregation_value(self):
        # Node 0 receives from nodes 1 and 2.
        conv = SAGEConv(1, 1, aggr="mean", rng=np.random.default_rng(0))
        conv.lin_l.weight.data = np.array([[1.0]], dtype=np.float32)
        conv.lin_l.bias.data = np.zeros(1, dtype=np.float32)
        conv.lin_r.weight.data = np.zeros((1, 1), dtype=np.float32)
        x = Tensor(np.array([[0.0], [2.0], [4.0]], dtype=np.float32))
        edges = np.array([[1, 2, 0, 0], [0, 0, 1, 2]])
        out = conv(x, edges)
        assert out.numpy()[0, 0] == pytest.approx(3.0)

    def test_sum_vs_mean_differ(self, small_ds):
        rngs = [np.random.default_rng(0), np.random.default_rng(0)]
        c_sum = SAGEConv(24, 8, aggr="sum", rng=rngs[0])
        c_mean = SAGEConv(24, 8, aggr="mean", rng=rngs[1])
        x = Tensor(small_ds.features)
        a = c_sum(x, small_ds.graph.edge_index).numpy()
        b = c_mean(x, small_ds.graph.edge_index).numpy()
        assert not np.allclose(a, b)

    def test_unknown_aggregation_rejected(self):
        with pytest.raises(ConfigurationError):
            SAGEConv(4, 4, aggr="max")

    def test_bad_edge_index_rejected(self, small_ds):
        conv = SAGEConv(24, 8, rng=np.random.default_rng(0))
        with pytest.raises(GraphError):
            conv(Tensor(small_ds.features), np.array([[0], [999]]))

    def test_deterministic_mode_bitwise_stable(self, small_ds, ctx):
        repro.use_deterministic_algorithms(True)
        conv = SAGEConv(24, 8, rng=np.random.default_rng(0))
        x = Tensor(small_ds.features)
        outs = {conv(x, small_ds.graph.edge_index).numpy().tobytes() for _ in range(4)}
        assert len(outs) == 1


class TestGraphSAGE:
    def test_forward_is_log_probability(self, small_ds):
        model = GraphSAGE(24, 8, 4, rng=np.random.default_rng(0))
        out = model(Tensor(small_ds.features), small_ds.graph.edge_index)
        p = np.exp(out.numpy())
        np.testing.assert_allclose(p.sum(axis=1), 1.0, rtol=1e-4)

    def test_training_reduces_loss(self, small_ds):
        from repro.nn import Adam, functional as F

        repro.use_deterministic_algorithms(True)
        model = GraphSAGE(24, 8, 4, rng=np.random.default_rng(0))
        opt = Adam(model.parameters(), lr=0.02)
        x = Tensor(small_ds.features)
        idx = np.flatnonzero(small_ds.train_mask)
        losses = []
        for _ in range(12):
            opt.zero_grad()
            out = model(x, small_ds.graph.edge_index)
            loss = F.nll_loss(out.gather_rows(idx), small_ds.labels[idx])
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_gradients_reach_all_parameters(self, small_ds):
        from repro.nn import functional as F

        repro.use_deterministic_algorithms(True)
        model = GraphSAGE(24, 8, 4, rng=np.random.default_rng(0))
        out = model(Tensor(small_ds.features), small_ds.graph.edge_index)
        F.nll_loss(out, small_ds.labels).backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, name
            assert np.any(p.grad != 0), name

    def test_learns_assortative_labels_better_than_chance(self, small_ds):
        from repro.nn import Adam, functional as F

        repro.use_deterministic_algorithms(True)
        model = GraphSAGE(24, 16, 4, rng=np.random.default_rng(0))
        opt = Adam(model.parameters(), lr=0.05)
        x = Tensor(small_ds.features)
        idx = np.flatnonzero(small_ds.train_mask)
        for _ in range(40):
            opt.zero_grad()
            loss = F.nll_loss(
                model(x, small_ds.graph.edge_index).gather_rows(idx),
                small_ds.labels[idx],
            )
            loss.backward()
            opt.step()
        with repro.deterministic_mode():
            pred = model(x, small_ds.graph.edge_index).numpy().argmax(axis=1)
        test_idx = np.flatnonzero(small_ds.test_mask)
        acc = float(np.mean(pred[test_idx] == small_ds.labels[test_idx]))
        assert acc > 0.3  # 4 classes -> chance is 0.25
