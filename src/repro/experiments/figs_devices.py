"""Supplementary figure — SPA Vs statistics across GPU families.

The paper's Fig 1 shows the V100; its artifact repository carries the
MI250X and GH200 variants and the text states "the means and standard
deviations of Vs are different between the GPU types, while the shapes are
similar".  This experiment regenerates that comparison — same arrays, same
kernel parameters, one device model per row — and extends it with the
A100 and MI300A profiles plus the statically scheduled LPU model, whose
row shows **zero** run-to-run variability (the paper's hardware route to
reproducibility).

Execution model: the whole ``(device, array, run)`` grid folds through
the batched run-axis engine in one pass per device
(:func:`~repro.experiments._sumdist.spa_vs_samples_devices`).  Scheduler
randomness is **anchored per (device, array) cell**
(:meth:`repro.runtime.RunContext.device_stream`; cell contract catalogued
in :mod:`repro.gpusim.scheduler`), so any device's rows reproduce
bit-identically no matter which other devices are swept — a
``--devices gh200`` override replays exactly the gh200 row of the full
sweep.  The run axis shards (:class:`~repro.experiments.base.ShardAxis`):
a shard evaluates a run window of every cell and windows concatenate
bit-exactly into the serial rows.
"""

from __future__ import annotations

import numpy as np

from ..lpu import device as _lpu_device  # noqa: F401  (registers "lpu")
from ..metrics.distribution import normality_report
from ..runtime import RunContext
from .axes import AxisSpec, plan_sweep
from .base import ShardableExperiment, register
from .sharding import RunConcat
from ._sumdist import sample_array, spa_vs_samples_devices

__all__ = ["FigSDevices"]

#: Default sweep: the paper's three measured families, the two registry
#: extensions, and the deterministic LPU row.
DEFAULT_DEVICES = ("v100", "gh200", "mi250x", "a100", "mi300a", "lpu")


class FigSDevices(ShardableExperiment):
    """SPA Vs moments per GPU family (supplementary to Fig 1).

    Axis declaration: (device x array x run) with the device axis
    **anchored** — it draws from per-(device, array) device-plane streams
    and consumes no ladder, so the declared ladder span is
    ``n_arrays * n_runs`` and any device subset replays bit-identically.
    """

    experiment_id = "figS1"
    title = "Supplementary: SPA Vs statistics across GPU families"
    axes = (
        AxisSpec("device", "device", param="devices", anchored=True),
        AxisSpec("array", "array", param="n_arrays"),
        AxisSpec("run", "run", param="n_runs", shardable=True),
    )

    def params_for(self, scale: str) -> dict:
        if scale == "paper":
            return {
                "devices": DEFAULT_DEVICES,
                "n_elements": 1_000_000, "n_arrays": 20, "n_runs": 2_000,
                "threads_per_block": 64, "bins": 41,
            }
        return {
            "devices": DEFAULT_DEVICES,
            "n_elements": 100_000, "n_arrays": 3, "n_runs": 300,
            "threads_per_block": 64, "bins": 21,
        }

    def shard_run(self, ctx: RunContext, params: dict, lo: int, hi: int) -> dict:
        plan = plan_sweep(self, params)
        devices = plan.axis("device").values
        n_arrays, n_runs = params["n_arrays"], params["n_runs"]
        # Anchor the device planes at the context's ladder position on
        # entry (reused contexts keep drawing fresh planes), then advance
        # the ladder by the declared span exactly once (the anchored
        # device axis consumes no ladder streams).
        base = ctx.peek_run_counter()
        data_rng = ctx.data(stream=0xF16D)
        xs = np.stack([
            sample_array(data_rng, params["n_elements"], "uniform")
            for _ in range(n_arrays)
        ])
        vs = spa_vs_samples_devices(
            xs, n_runs, ctx,
            devices=devices,
            threads_per_block=params["threads_per_block"],
            run_lo=lo, run_hi=hi, anchor=base,
        )
        ctx.seek_runs(base + plan.ladder_span())
        vs_axis = plan.merge_axis("array", "run")
        return {"devices": {d: RunConcat(vs[d], axis=vs_axis) for d in devices}}

    def finalize(self, ctx: RunContext, params: dict, payload: dict):
        from ..gpusim.device import get_device

        rows: list[dict] = []
        thresh = 0.08 + (params["bins"] - 1) / params["n_runs"]
        for device in tuple(params["devices"]):
            vs_mat = payload["devices"][device]
            deterministic = get_device(device).deterministic
            reports = [
                normality_report(vs_mat[a], bins=params["bins"], kl_threshold=thresh)
                for a in range(params["n_arrays"])
            ]
            rows.append(
                {
                    "device": device,
                    "deterministic": bool(deterministic),
                    "vs_mean_x1e16": float(np.mean([r.mean for r in reports])) * 1e16,
                    "vs_std_x1e16": float(np.mean([r.std for r in reports])) * 1e16,
                    "median_kl_to_normal": float(np.median([r.kl_normal for r in reports])),
                    "frac_arrays_normal_by_kl": float(np.mean([r.is_normal_kl for r in reports])),
                    "distinct_sums_per_array": float(
                        np.mean([np.unique(vs_mat[a]).size for a in range(params["n_arrays"])])
                    ),
                }
            )
        nd_stds = [r["vs_std_x1e16"] for r in rows if not r["deterministic"]]
        spread = (
            f"(std spread {min(nd_stds):.2f}..{max(nd_stds):.2f} x1e-16) "
            if nd_stds
            else "(no FPNA device in this sweep) "
        )
        notes = (
            "Shape checks: every FPNA family's per-array PDFs stay normal "
            "by the KL criterion while the moments differ across families "
            f"{spread}- the paper's cross-GPU observation; statically "
            "scheduled rows (deterministic=True) show exactly zero "
            "variability and a single distinct sum per array."
        )
        return rows, notes, {}


register(FigSDevices())
