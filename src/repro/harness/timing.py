"""Wall-clock timing helpers (complementing the simulated cost models).

The experiments report *simulated* device times; the benchmarks also report
*real* wall-clock of the simulator itself via pytest-benchmark.  These
helpers cover ad-hoc timing needs (examples, the CLI) with basic repeated
-measurement statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["TimingStats", "time_callable"]


@dataclass(frozen=True)
class TimingStats:
    """Repeated-measurement wall-clock statistics (seconds)."""

    mean_s: float
    std_s: float
    min_s: float
    max_s: float
    n: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean_s * 1e3:.3f} ms +- {self.std_s * 1e3:.3f} ms (n={self.n})"


def time_callable(fn, *args, repeats: int = 5, warmup: int = 1, **kwargs) -> TimingStats:
    """Time ``fn(*args, **kwargs)`` with warmup and repetition."""
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn(*args, **kwargs)
    obs = np.empty(repeats)
    for i in range(repeats):
        t0 = time.perf_counter()
        fn(*args, **kwargs)
        obs[i] = time.perf_counter() - t0
    return TimingStats(
        mean_s=float(obs.mean()),
        std_s=float(obs.std(ddof=1)) if repeats > 1 else 0.0,
        min_s=float(obs.min()),
        max_s=float(obs.max()),
        n=repeats,
    )
