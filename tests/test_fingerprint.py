"""Tests for module-granular code fingerprints (:mod:`repro.harness.fingerprint`).

Two layers: a synthetic package under ``tmp_path`` pins the import-graph
extraction and closure semantics (resolution depth, relative levels,
cycles, the deliberate no-ancestor-``__init__`` rule), and a copied
``repro`` tree with a monkeypatched :func:`~repro.harness.fingerprint.package_root`
exercises real edits — the invalidation contract the result cache keys on:
an edit changes exactly the fingerprints of the experiments whose closure
reaches the edited module.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

import repro
from repro.errors import ConfigurationError
from repro.harness import fingerprint
from repro.harness.fingerprint import (
    experiment_fingerprint,
    fingerprint_delta,
    import_graph,
    module_hashes,
    package_fingerprint,
    transitive_closure,
)


def _make_pkg(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "pkg"
    for rel, src in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(src)
    return root


class TestImportGraph:
    def test_absolute_and_relative_forms(self, tmp_path):
        root = _make_pkg(tmp_path, {
            "__init__.py": "",
            "a.py": "from . import b\n",
            "b.py": "import pkg.c\n",
            "c.py": "x = 1\n",
            "d.py": "import numpy\n",  # non-package import: invisible
        })
        graph = import_graph(root, "pkg")
        assert graph["pkg.a"] == frozenset({"pkg.b"})
        assert graph["pkg.b"] == frozenset({"pkg.c"})
        assert graph["pkg.c"] == frozenset()
        assert graph["pkg.d"] == frozenset()

    def test_from_import_resolves_to_deepest_module(self, tmp_path):
        # ``from pkg.sub.mod import thing`` names the module, not the attr.
        root = _make_pkg(tmp_path, {
            "__init__.py": "",
            "a.py": "from pkg.sub.mod import thing\n",
            "sub/__init__.py": "",
            "sub/mod.py": "thing = 1\n",
        })
        graph = import_graph(root, "pkg")
        assert graph["pkg.a"] == frozenset({"pkg.sub.mod"})

    def test_relative_import_levels(self, tmp_path):
        root = _make_pkg(tmp_path, {
            "__init__.py": "",
            "c.py": "x = 1\n",
            "sub/__init__.py": "",
            "sub/mod.py": "from ..c import x\nfrom . import peer\n",
            "sub/peer.py": "y = 2\n",
        })
        graph = import_graph(root, "pkg")
        assert graph["pkg.sub.mod"] == frozenset({"pkg.c", "pkg.sub.peer"})

    def test_relative_import_beyond_root_is_skipped(self, tmp_path):
        root = _make_pkg(tmp_path, {
            "__init__.py": "",
            "a.py": "from ....nowhere import x\n",
        })
        assert import_graph(root, "pkg")["pkg.a"] == frozenset()

    def test_submodule_import_skips_ancestor_init(self, tmp_path):
        # The deliberate approximation: importing pkg.sub.mod does NOT
        # depend on pkg/__init__.py or pkg/sub/__init__.py — otherwise a
        # re-exporting package __init__ collapses every closure into one.
        root = _make_pkg(tmp_path, {
            "__init__.py": "from . import a\nfrom .sub import mod\n",
            "a.py": "import pkg.sub.mod\n",
            "sub/__init__.py": "from . import mod\n",
            "sub/mod.py": "x = 1\n",
        })
        closure = transitive_closure("pkg.a", root=root, package="pkg")
        assert closure == frozenset({"pkg.a", "pkg.sub.mod"})

    def test_function_local_imports_are_seen(self, tmp_path):
        root = _make_pkg(tmp_path, {
            "__init__.py": "",
            "a.py": "def f():\n    from .b import g\n    return g()\n",
            "b.py": "def g():\n    return 1\n",
        })
        assert import_graph(root, "pkg")["pkg.a"] == frozenset({"pkg.b"})


class TestTransitiveClosure:
    def test_chain_and_isolation(self, tmp_path):
        root = _make_pkg(tmp_path, {
            "__init__.py": "",
            "a.py": "from . import b\n",
            "b.py": "from . import c\n",
            "c.py": "x = 1\n",
            "d.py": "y = 2\n",
        })
        graph = import_graph(root, "pkg")
        assert transitive_closure("pkg.a", graph) == frozenset(
            {"pkg.a", "pkg.b", "pkg.c"}
        )
        assert transitive_closure("pkg.d", graph) == frozenset({"pkg.d"})

    def test_cycle_terminates_with_both_members(self, tmp_path):
        root = _make_pkg(tmp_path, {
            "__init__.py": "",
            "x.py": "from .y import f\n",
            "y.py": "from .x import g\n",
        })
        graph = import_graph(root, "pkg")
        both = frozenset({"pkg.x", "pkg.y"})
        assert transitive_closure("pkg.x", graph) == both
        assert transitive_closure("pkg.y", graph) == both

    def test_unknown_module_raises(self, tmp_path):
        root = _make_pkg(tmp_path, {"__init__.py": ""})
        with pytest.raises(ConfigurationError, match="nosuch"):
            transitive_closure("pkg.nosuch", root=root, package="pkg")


class TestMemoization:
    def test_hash_memo_invalidates_on_edit(self, tmp_path):
        root = _make_pkg(tmp_path, {"__init__.py": "", "a.py": "x = 1\n"})
        before = module_hashes(root, "pkg")
        assert module_hashes(root, "pkg") == before  # memo hit, same bits
        (root / "a.py").write_text("x = 2  # edited\n")
        after = module_hashes(root, "pkg")
        assert after["pkg.a"] != before["pkg.a"]
        assert after["pkg"] == before["pkg"]

    def test_import_memo_invalidates_on_edit(self, tmp_path):
        root = _make_pkg(tmp_path, {
            "__init__.py": "", "a.py": "x = 1\n", "b.py": "y = 2\n",
        })
        assert import_graph(root, "pkg")["pkg.a"] == frozenset()
        (root / "a.py").write_text("from . import b\n")
        assert import_graph(root, "pkg")["pkg.a"] == frozenset({"pkg.b"})

    def test_package_fingerprint_tracks_any_edit(self, tmp_path):
        root = _make_pkg(tmp_path, {"__init__.py": "", "a.py": "x = 1\n"})
        before = package_fingerprint(root, "pkg")
        (root / "a.py").write_text("x = 1  # docstring-level edit\n")
        assert package_fingerprint(root, "pkg") != before


class TestFingerprintDelta:
    def test_changed_added_removed(self):
        old = {"m.a": "1", "m.b": "2", "m.gone": "3"}
        new = {"m.a": "1", "m.b": "9", "m.new": "4"}
        assert fingerprint_delta(old, new) == ("m.b", "m.gone", "m.new")

    def test_identical_maps_empty(self):
        assert fingerprint_delta({"m": "1"}, {"m": "1"}) == ()


# --------------------------------------------------------- the real package

@pytest.fixture(scope="module")
def repro_copy(tmp_path_factory):
    """A private copy of the installed ``repro`` tree (edits stay local)."""
    src = Path(repro.__file__).resolve().parent
    dst = tmp_path_factory.mktemp("pkgcopy") / "repro"
    shutil.copytree(src, dst, ignore=shutil.ignore_patterns("__pycache__"))
    return dst


@pytest.fixture()
def patched_root(repro_copy, monkeypatch):
    """Point the fingerprint machinery at the copied tree."""
    monkeypatch.setattr(fingerprint, "package_root", lambda: (repro_copy, "repro"))
    return repro_copy


def _edit(path: Path) -> None:
    path.write_text(path.read_text() + "\n# fingerprint-test edit\n")


def _unedit(path: Path) -> None:
    text = path.read_text()
    path.write_text(text.replace("\n# fingerprint-test edit\n", ""))


class TestExperimentInvalidation:
    def test_outside_closure_edit_is_invisible(self, patched_root):
        # fig1 never imports GNN code: a _gnn.py edit must not move it.
        target = patched_root / "experiments" / "_gnn.py"
        fig1 = experiment_fingerprint("fig1")
        table7 = experiment_fingerprint("table7")
        _edit(target)
        try:
            assert experiment_fingerprint("fig1") == fig1
            assert experiment_fingerprint("table7") != table7
        finally:
            _unedit(target)

    def test_shared_module_edit_hits_every_dependent(self, patched_root):
        # fp/summation.py is the paper's core: every summation experiment
        # (and the GNN tables, whose kernels fold through it) depends on it.
        target = patched_root / "fp" / "summation.py"
        before = {
            eid: experiment_fingerprint(eid)
            for eid in ("fig1", "fig2", "table7", "maxvs")
        }
        _edit(target)
        try:
            for eid, fp in before.items():
                assert experiment_fingerprint(eid) != fp, eid
        finally:
            _unedit(target)

    def test_closures_include_backend_kernel_source(self, patched_root):
        # A compiled-kernel source edit must invalidate every experiment
        # that could dispatch through the backend.
        closure = transitive_closure(
            "repro.experiments.fig1", root=patched_root, package="repro"
        )
        assert "repro.backend.csrc" in closure

    def test_cache_key_rides_the_experiment_fingerprint(self, patched_root):
        from repro.harness import cache_key

        target = patched_root / "experiments" / "_gnn.py"
        fig1_key = cache_key("fig1", "default", 0)
        table7_key = cache_key("table7", "default", 0)
        _edit(target)
        try:
            assert cache_key("fig1", "default", 0) == fig1_key
            assert cache_key("table7", "default", 0) != table7_key
        finally:
            _unedit(target)

    def test_fingerprint_stable_across_calls(self, patched_root):
        assert experiment_fingerprint("fig4") == experiment_fingerprint("fig4")
