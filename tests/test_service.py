"""Tests for the experiment daemon + seeded load generator.

Three layers:

* **Unit** — :class:`ServiceStats` accounting, percentile math,
  :class:`JobRecord` serialisation.
* **Arrival policies** — seeded reproducibility of the constant-rate and
  piecewise-constant NHPP processes, thinning correctness (zero-rate
  segments stay empty, the process ends at the last segment), validation.
* **HTTP end-to-end** — a live :class:`ServiceThread` over a real runner:
  submission/polling/waiting, cache-hit answering with zero executor
  dispatches, 400 admission errors, 429 backpressure, 503 + graceful
  completion on drain, and the results/stats/experiments endpoints.
"""

import json
import math
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.experiments import get_experiment, list_experiments
from repro.harness import JobOutcome, JobRunner, JobSpec, ResultCache, cache_key
from repro.harness.jobs import CellOutcome
from repro.harness.parallel import ShardedExecutor
from repro.harness.service import (
    ConstantRateArrival,
    ExperimentService,
    LoadGenerator,
    LoadReport,
    PiecewiseConstantNHPP,
    ServiceStats,
    ServiceThread,
)
from repro.harness.service.daemon import _percentile
from repro.runtime import RunContext


# --------------------------------------------------------------------- helpers
def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=30) as resp:
        return json.loads(resp.read().decode())


def _post(url: str, doc: dict) -> dict:
    req = urllib.request.Request(
        url, data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    with urllib.request.urlopen(req, timeout=60) as resp:
        return json.loads(resp.read().decode())


def _post_error(url: str, data: bytes) -> tuple[int, dict]:
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


# ----------------------------------------------------------------------- units
class TestServiceStats:
    def test_percentile_interpolates(self):
        assert _percentile([], 0.5) == 0.0
        assert _percentile([3.0], 0.99) == 3.0
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5
        assert _percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0

    def test_completion_accounting(self):
        stats = ServiceStats()
        stats.record_completion(0.1, cached=True, failed=False)
        stats.record_completion(0.3, cached=False, failed=False)
        stats.record_completion(0.2, cached=False, failed=True)
        doc = stats.as_dict()
        assert doc["completed"] == 2 and doc["failed"] == 1
        assert doc["jobs_cached"] == 1 and doc["hit_rate"] == 0.5
        assert doc["latency_ms"]["n"] == 3
        assert doc["latency_ms"]["p50"] == pytest.approx(200.0)

    def test_latency_record_is_bounded(self):
        stats = ServiceStats(max_latencies=10)
        for i in range(50):
            stats.record_completion(float(i), cached=False, failed=False)
        assert len(stats.latencies_s) == 10
        assert stats.latencies_s == [float(i) for i in range(40, 50)]
        assert stats.completed == 50  # counters keep the full history

    def test_queue_limit_validated(self):
        with pytest.raises(ReproError, match="queue_limit"):
            ExperimentService(JobRunner(None, None), queue_limit=0)


# ------------------------------------------------------------ arrival policies
class TestArrivalPolicies:
    def test_constant_rate_is_seeded_and_reproducible(self):
        a = ConstantRateArrival(50.0, seed=3).arrival_times(2.0)
        b = ConstantRateArrival(50.0, seed=3).arrival_times(2.0)
        c = ConstantRateArrival(50.0, seed=4).arrival_times(2.0)
        assert a == b and a != c
        assert all(0 <= t < 2.0 for t in a)
        assert a == sorted(a)
        # ~100 expected arrivals; a 3x band catches seed pathologies
        # without pinning the stream.
        assert 30 < len(a) < 300

    def test_constant_rate_validation(self):
        with pytest.raises(ConfigurationError, match="rate_hz"):
            ConstantRateArrival(0.0)
        with pytest.raises(ConfigurationError, match="horizon"):
            ConstantRateArrival(1.0).arrival_times(0.0)

    def test_nhpp_validation(self):
        with pytest.raises(ConfigurationError, match="segment"):
            PiecewiseConstantNHPP([])
        with pytest.raises(ConfigurationError, match="end"):
            PiecewiseConstantNHPP([(1.0, 1.0, 5.0)])
        with pytest.raises(ConfigurationError, match="rate"):
            PiecewiseConstantNHPP([(0.0, 1.0, -2.0)])
        with pytest.raises(ConfigurationError, match="positive rate"):
            PiecewiseConstantNHPP([(0.0, 1.0, 0.0)])
        with pytest.raises(ConfigurationError, match="segment 0"):
            PiecewiseConstantNHPP([(0.0, "x", 1.0)])

    def test_nhpp_rate_function(self):
        nhpp = PiecewiseConstantNHPP([(0, 1, 10), (1, 2, 40), (3, 4, 10)])
        assert nhpp.rate_at(0.5) == 10 and nhpp.rate_at(1.5) == 40
        assert nhpp.rate_at(2.5) == 0.0  # gap between segments
        assert nhpp.rate_at(9.0) == 0.0  # past the end
        assert nhpp.envelope_hz == 40

    def test_nhpp_is_seeded_and_reproducible(self):
        segs = [(0, 1, 20), (1, 2, 80), (2, 3, 20)]
        a = PiecewiseConstantNHPP(segs, seed=11).arrival_times(3.0)
        b = PiecewiseConstantNHPP(segs, seed=11).arrival_times(3.0)
        assert a == b and a == sorted(a)

    def test_nhpp_thinning_respects_the_rate_shape(self):
        # Peak segment at 4x the shoulder rate: the peak must collect
        # (statistically, but the seed makes it deterministic) several
        # times the shoulder's arrivals, and zero-rate gaps stay empty.
        nhpp = PiecewiseConstantNHPP(
            [(0, 1, 20), (1, 2, 80), (3, 4, 20)], seed=5
        )
        times = nhpp.arrival_times(4.0)
        shoulder = sum(1 for t in times if t < 1)
        peak = sum(1 for t in times if 1 <= t < 2)
        gap = sum(1 for t in times if 2 <= t < 3)
        assert gap == 0
        assert peak > 2 * shoulder > 0

    def test_nhpp_ends_after_last_segment(self):
        nhpp = PiecewiseConstantNHPP([(0, 1, 30)], seed=0)
        assert nhpp.next_arrival_time(5.0) == math.inf
        # A long horizon stops at the process end, not the horizon.
        assert all(t < 1.0 for t in nhpp.arrival_times(100.0))


class TestLoadReport:
    def test_derived_metrics(self):
        rep = LoadReport(n_scheduled=10, n_ok=8, n_rejected=1, n_failed=1,
                         duration_s=4.0, latencies_s=[0.1, 0.2, 0.3, 0.4],
                         n_cached=6)
        assert rep.throughput_rps == 2.0
        assert rep.hit_rate == 0.75
        assert rep.percentile_ms(0.5) == pytest.approx(250.0)
        doc = rep.as_dict()
        assert doc["n_ok"] == 8 and doc["p99_ms"] > doc["p50_ms"]

    def test_empty_report_is_all_zero(self):
        rep = LoadReport(n_scheduled=0, n_ok=0, n_rejected=0, n_failed=0,
                         duration_s=0.0)
        assert rep.throughput_rps == 0.0 and rep.hit_rate == 0.0
        assert rep.percentile_ms(0.99) == 0.0

    def test_generator_needs_jobs(self):
        with pytest.raises(ConfigurationError, match="job document"):
            LoadGenerator("http://x", ConstantRateArrival(1.0), [])


# ------------------------------------------------------------ HTTP end-to-end
@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """One live daemon (real runner, serial executor, fresh cache) shared
    by every end-to-end test in this module."""
    cache_dir = tmp_path_factory.mktemp("service-cache")
    with ShardedExecutor(workers=1) as executor:
        runner = JobRunner(executor, ResultCache(cache_dir))
        with ServiceThread(runner, queue_limit=8) as svc:
            yield svc


class TestServiceEndpoints:
    def test_experiments_lists_the_registry(self, service):
        doc = _get(service.base_url + "/experiments")
        ids = [e["experiment_id"] for e in doc["experiments"]]
        assert ids == list_experiments()
        assert all(e["title"] for e in doc["experiments"])

    def test_submit_poll_and_wait(self, service):
        # Async submission: 202-shaped body, then poll to completion.
        doc = _post(service.base_url + "/jobs", {"experiment_id": "table2"})
        job_id = doc["job_id"]
        assert doc["status"] in ("queued", "running")
        deadline = time.monotonic() + 60
        while True:
            record = _get(f"{service.base_url}/jobs/{job_id}")
            if record["status"] in ("done", "failed"):
                break
            assert time.monotonic() < deadline, "job never finished"
            time.sleep(0.05)
        assert record["status"] == "done"
        assert record["outcome"]["cached"] is False
        assert record["outcome"]["n_cells"] == 1
        assert record["latency_s"] >= 0 and record["queue_wait_s"] >= 0
        assert "result" not in record["outcome"]  # payload only on request
        full = _get(f"{service.base_url}/jobs/{job_id}?result=1")
        assert full["outcome"]["result"]["experiment_id"] == "table2"
        listing = _get(service.base_url + "/jobs")
        assert {"job_id": job_id, "status": "done",
                "experiment_id": "table2"} in listing["jobs"]

    def test_warm_resubmission_is_cached_with_zero_dispatches(self, service):
        _post(service.base_url + "/jobs?wait=1", {"experiment_id": "table2"})
        before = _get(service.base_url + "/stats")["executor"]["dispatches"]
        doc = _post(service.base_url + "/jobs?wait=1",
                    {"experiment_id": "table2"})
        assert doc["status"] == "done"
        assert doc["outcome"]["cached"] is True
        after = _get(service.base_url + "/stats")
        assert after["executor"]["dispatches"] == before
        assert after["jobs_cached"] >= 1 and after["hit_rate"] > 0

    def test_results_endpoint_serves_the_cache_directly(self, service):
        _post(service.base_url + "/jobs?wait=1", {"experiment_id": "table2"})
        key = cache_key("table2", "default", 0)
        doc = _get(f"{service.base_url}/results/{key}")
        assert doc["meta"]["experiment_id"] == "table2"
        assert "result" not in doc  # metadata head-probe only
        full = _get(f"{service.base_url}/results/{key}?payload=1")
        assert full["result"]["rows"]
        status, _ = _post_error(service.base_url + "/jobs", b"")
        code, body = 0, {}
        try:
            _get(f"{service.base_url}/results/{'0' * 64}")
        except urllib.error.HTTPError as exc:
            code, body = exc.code, json.load(exc)
        assert code == 404 and "no cached result" in body["error"]

    def test_admission_rejects_bad_submissions_with_400(self, service):
        url = service.base_url + "/jobs"
        for payload, fragment in [
            (b"{not json", "not valid JSON"),
            (json.dumps({"experiment_id": "nope"}).encode(), "nope"),
            (json.dumps({"experiment_id": "table2",
                         "overides": {}}).encode(), "overides"),
            (json.dumps({"experiment_id": "figS1",
                         "devices": ["warp9"]}).encode(), "warp9"),
            (json.dumps({"experiment_id": "table2",
                         "devices": ["v100"]}).encode(), "device"),
        ]:
            status, body = _post_error(url, payload)
            assert status == 400, body
            assert fragment in body["error"]

    def test_oversized_body_is_rejected(self, service):
        status, body = _post_error(service.base_url + "/jobs",
                                   b"x" * (1_048_576 + 1))
        assert status == 400 and "exceeds" in body["error"]

    def test_unknown_routes_404(self, service):
        for url in ("/nope", "/jobs/job-999999"):
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(service.base_url + url)
            assert exc.value.code == 404

    def test_failed_job_does_not_kill_the_daemon(self, service):
        # An override that passes admission but fails at dispatch must
        # surface as a failed record, not as a dead worker task.
        doc = _post(service.base_url + "/jobs?wait=1",
                    {"experiment_id": "table2",
                     "overrides": {"bogus_param": 1}})
        assert doc["status"] == "failed"
        assert "bogus_param" in doc["error"]
        follow = _post(service.base_url + "/jobs?wait=1",
                       {"experiment_id": "table2"})
        assert follow["status"] == "done"
        assert _get(service.base_url + "/stats")["failed"] >= 1

    def test_loadgen_against_warm_service_is_all_hits(self, service):
        _post(service.base_url + "/jobs?wait=1", {"experiment_id": "table2"})
        before = _get(service.base_url + "/stats")["executor"]["dispatches"]
        gen = LoadGenerator(
            service.base_url, ConstantRateArrival(30.0, seed=9),
            [{"experiment_id": "table2"}], seed=9,
        )
        report = gen.run(1.0)
        assert report.n_scheduled > 5
        assert report.n_failed == 0
        assert report.n_ok + report.n_rejected == report.n_scheduled
        assert report.hit_rate == 1.0
        after = _get(service.base_url + "/stats")["executor"]["dispatches"]
        assert after == before  # traffic never touched a worker


class _GatedRunner:
    """JobRunner stand-in whose job execution blocks on a gate — makes
    queue states (backpressure, drain-with-backlog) deterministic."""

    def __init__(self) -> None:
        self.gate = threading.Event()
        self.cache = None
        self.executor = type("_Exec", (), {"workers": 1})()
        self.ran: list[str] = []
        self._result = get_experiment("table2").run(ctx=RunContext(seed=0))

    def plan_overrides(self, spec, *, strict_devices=True):
        return dict(spec.overrides)

    def run(self, spec, *, strict_devices=True):
        assert self.gate.wait(timeout=30), "gate never opened"
        self.ran.append(spec.experiment_id)
        cell = CellOutcome(key="0" * 64, overrides={}, hit=False,
                           digest="stub", elapsed_s=0.0)
        return JobOutcome(spec=spec, result=self._result, cells=[cell],
                          cached=False, elapsed_s=0.0)


class TestBackpressureAndDrain:
    def test_queue_full_is_429_with_depth(self):
        runner = _GatedRunner()
        with ServiceThread(runner, queue_limit=2) as svc:
            url = svc.base_url + "/jobs"
            body = json.dumps({"experiment_id": "table2"}).encode()
            _post_error(url, body)  # in flight (held at the gate)
            time.sleep(0.3)
            for _ in range(2):  # fills the queue
                status, _ = _post_error(url, body)
                assert status == 202
            status, doc = _post_error(url, body)
            assert status == 429
            assert doc["queue_depth"] == 2 and doc["queue_limit"] == 2
            stats = _get(svc.base_url + "/stats")
            assert stats["rejected_429"] == 1
            assert stats["queue_depth"] == 2
            runner.gate.set()

    def test_drain_finishes_backlog_and_rejects_new_work(self):
        runner = _GatedRunner()
        with ServiceThread(runner, queue_limit=8) as svc:
            url = svc.base_url + "/jobs"
            body = json.dumps({"experiment_id": "table2"}).encode()
            for _ in range(3):
                _post_error(url, body)
            time.sleep(0.3)
            svc.drain()
            time.sleep(0.2)
            assert _get(svc.base_url + "/stats")["draining"] is True
            status, doc = _post_error(url, body)
            assert status == 503 and "draining" in doc["error"]
            runner.gate.set()
        # Context exit joins the server thread: the drain completed, and
        # every admitted job ran before shutdown.
        assert len(runner.ran) == 3
        records = list(svc.service.jobs.values())
        assert [r.status for r in records] == ["done"] * 3
        assert svc.service.stats.rejected_503 == 1
