"""Extension — collective-level variability across topology × precision.

The paper measures run-to-run variability *inside* one kernel; a training
or inference stack immediately adds a second reduction layer — the
cross-device collective.  This experiment quantifies how much variability
the collective combine step contributes on top of intra-kernel
nondeterminism, and how it depends on the reduction **topology** (ring /
tree / butterfly), the participating **devices**, and the combine-step
accumulation **precision** (f64 / f32 / bf16 / fp16).

Design: one input array; each participating device SPA-sums its
contiguous chunk with its own scheduled intra-kernel fold
(:func:`repro.gpusim.collectives.device_partial_sums_runs`), producing a
``(runs, ranks)`` partial matrix consumed by *every* (topology,
precision) cell — so topology and precision effects are measured against
identical partials.  Per topology, one set of per-run combine orders is
drawn (:func:`repro.gpusim.collectives.arrival_orders` under the
configured arrival policy) and shared by all precisions — so precision
effects are measured against identical schedules.  Each cell then folds
the partials in its orders at its precision.

Alongside the policy-driven cells, the shard computes a **deterministic
reference**: in-order f64 folds through each topology's schedule code.
The in-order policy draws nothing and yields the identity combine order
for every topology by construction, so these three results must agree
bit-exactly — the topology-equivalence acceptance check, reported in
``extra`` and pinned by the golden digest.

Stream layout (see the catalogue in :mod:`repro.gpusim.scheduler`):
per-rank partials draw run-granular anchored streams on per-device
planes (``coll-rank:<device>``, cell ``r``); edge delays draw one
float32 word per (run, edge) cell on per-topology planes
(``coll-edge:<topology>``, cell ``r * n_edges + e``).  No two runs share
a stream on any plane, so the run axis shards window-bit-exactly, and
device-keyed planes make each rank's draws independent of the device
subset.
"""

from __future__ import annotations

import numpy as np

from ..fp.lowprec import bf16_ulp_distance
from ..fp.ulp import ulp_distance
from ..gpusim.collectives import (
    arrival_orders,
    collective_fold_runs,
    device_partial_sums_runs,
)
from ..runtime import RunContext
from .axes import AxisSpec, plan_sweep
from .base import ShardableExperiment, register
from .sharding import RunConcat
from ._sumdist import sample_array

__all__ = ["CollectiveSweep"]

#: NumPy view dtype that makes bit-exactness checks exact on f64 payloads.
_BITS = np.int64


def _spread_ulps(sums: np.ndarray, precision: str) -> float:
    """ULP distance between the smallest and largest collective result,
    measured on the precision's own grid (results are f64 bit-holding
    narrow values, so the narrow casts below are exact)."""
    lo, hi = np.min(sums), np.max(sums)
    if precision == "f64":
        return float(ulp_distance(lo, hi))
    if precision == "f32":
        return float(ulp_distance(np.float32(lo), np.float32(hi)))
    if precision == "fp16":
        return float(ulp_distance(np.float16(lo), np.float16(hi)))
    return float(bf16_ulp_distance(np.float32(lo), np.float32(hi)))


class CollectiveSweep(ShardableExperiment):
    """Collective allreduce variability: topology × precision × device.

    Axis declaration: (topology x precision x device x run) with the
    device axis **anchored** — partials and edge delays draw from
    anchored per-cell device-plane streams, the ladder advances by the
    declared span exactly once, and the run axis shards
    window-bit-exactly because no two runs share a stream.
    """

    experiment_id = "collsweep"
    title = "Extension: collective allreduce variability (topology x precision)"
    axes = (
        AxisSpec("topology", "config", param="topologies"),
        AxisSpec("precision", "config", param="precisions"),
        AxisSpec("device", "device", param="devices", anchored=True),
        AxisSpec("run", "run", param="n_runs", shardable=True),
    )

    def params_for(self, scale: str) -> dict:
        if scale == "paper":
            return {
                "topologies": ("ring", "tree", "butterfly"),
                "precisions": ("f64", "f32", "bf16", "fp16"),
                "devices": ("v100", "gh200", "h100", "mi250x", "a100", "mi300a"),
                "n_elements": 65_536, "n_runs": 1_000,
                "policy": "uniform", "skew": 1.0,
                "distribution": "normal", "rank_scale": 2.0,
                "threads_per_block": 128,
            }
        return {
            "topologies": ("ring", "tree", "butterfly"),
            "precisions": ("f64", "f32", "bf16", "fp16"),
            "devices": ("v100", "gh200", "mi250x", "cpu"),
            "n_elements": 4_096, "n_runs": 200,
            "policy": "uniform", "skew": 1.0,
            "distribution": "normal", "rank_scale": 2.0,
            "threads_per_block": 128,
        }

    def shard_run(self, ctx: RunContext, params: dict, lo: int, hi: int) -> dict:
        plan = plan_sweep(self, params)
        base = ctx.peek_run_counter()
        data_rng = ctx.data(stream=0x51C7)
        # Zero-mean inputs give near-cancelling per-rank partials, where
        # combine-order effects stay visible at every precision; scaling
        # rank p's chunk by rank_scale**p models heterogeneous shard
        # magnitudes (the model-parallel case where combine order
        # matters).  A power-of-two scale keeps the scaling itself exact
        # at every precision — spread comes from addition order alone.
        x = sample_array(data_rng, params["n_elements"], params["distribution"])
        for rank, idx in enumerate(np.array_split(np.arange(x.size), len(
                plan.axis("device").values))):
            x[idx] *= float(params["rank_scale"]) ** rank
        devices = plan.axis("device").values
        n_runs = params["n_runs"]
        partials = device_partial_sums_runs(
            x, devices, n_runs, ctx,
            threads_per_block=params["threads_per_block"],
            run_lo=lo, run_hi=hi, anchor=base,
        )
        run_axis = plan.merge_axis("run")
        sums: dict[str, RunConcat] = {}
        reference: dict[str, RunConcat] = {}
        for topology in plan.axis("topology").values:
            orders = arrival_orders(
                topology, len(devices), n_runs, ctx,
                policy=params["policy"], skew=params["skew"],
                anchor=base, run_lo=lo, run_hi=hi,
            )
            for precision in plan.axis("precision").values:
                sums[f"{topology}/{precision}"] = RunConcat(
                    collective_fold_runs(partials, orders, precision),
                    axis=run_axis,
                )
            # Deterministic in-order f64 reference through the same
            # topology's schedule code: draws nothing, must agree
            # bit-exactly across all three topologies.
            det = arrival_orders(
                topology, len(devices), n_runs, ctx,
                policy="inorder", anchor=base, run_lo=lo, run_hi=hi,
            )
            reference[topology] = RunConcat(
                collective_fold_runs(partials, det, "f64"), axis=run_axis,
            )
        ctx.seek_runs(base + plan.ladder_span())
        return {
            "sums": sums,
            "reference": reference,
            "partials": RunConcat(partials, axis=run_axis),
        }

    def finalize(self, ctx: RunContext, params: dict, payload: dict):
        rows: list[dict] = []
        for topology in params["topologies"]:
            for precision in params["precisions"]:
                s = np.asarray(payload["sums"][f"{topology}/{precision}"])
                rows.append(
                    {
                        "topology": topology,
                        "precision": precision,
                        "distinct_sums": int(np.unique(s).size),
                        "spread_ulps": _spread_ulps(s, precision),
                        "spread_abs": float(np.max(s) - np.min(s)),
                        "mean_sum": float(np.mean(s)),
                    }
                )
        refs = [
            np.ascontiguousarray(np.asarray(payload["reference"][t]))
            for t in params["topologies"]
        ]
        equivalent = all(
            np.array_equal(refs[0].view(_BITS), r.view(_BITS)) for r in refs[1:]
        )
        partials = np.asarray(payload["partials"])
        extra = {
            "deterministic_f64_topology_equivalent": bool(equivalent),
            "partial_distinct_per_rank": [
                int(np.unique(partials[:, k]).size)
                for k in range(partials.shape[1])
            ],
            "policy": params["policy"],
        }
        notes = (
            "Same per-rank partials feed every (topology, precision) cell "
            "and each topology's combine orders are shared across "
            "precisions, so rows isolate schedule and precision effects. "
            "The deterministic in-order f64 reference is bit-exact across "
            "ring, tree and butterfly (the stable tie-break collapses all "
            "three schedules to the identity order); narrow accumulation "
            "widens the spread from O(1) f64 ulps to many bf16/fp16 ulps."
        )
        return rows, notes, extra


register(CollectiveSweep())
