"""GraphSAGE convolution and the paper's two-layer classifier (§V).

A GNN layer is ``h_v' = U(h_v, A({h_u | u in N(v)}))``.  GraphSAGE uses
sum/mean aggregation implemented — as in PyTorch Geometric — with
``index_add`` over the edge list.  That aggregation is the *only*
non-deterministic kernel in this model: per the paper, a 10-epoch training
run on Cora then yields 1 000 bitwise-unique weight vectors.

:class:`SAGEConv` aggregates ``x[src]`` into destination rows with
:meth:`repro.tensor.Tensor.index_add`, whose forward obeys the global
determinism switch and whose backward is a deterministic gather; the
*backward of the gather* on the other side is again ``index_add``, so both
training directions carry FPNA variability in non-deterministic mode.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, GraphError
from ..tensor import Tensor
from .linear import Linear
from .module import Module

__all__ = ["SAGEConv", "GraphSAGE"]


def _check_edges(edge_index, num_nodes: int) -> np.ndarray:
    e = np.asarray(edge_index)
    if e.ndim != 2 or e.shape[0] != 2:
        raise GraphError(f"edge_index must be (2, E), got {e.shape}")
    if not np.issubdtype(e.dtype, np.integer):
        raise GraphError(f"edge_index must be integer, got dtype {e.dtype}")
    if e.size and (e.min() < 0 or e.max() >= num_nodes):
        raise GraphError(f"edge indices must be in [0, {num_nodes})")
    return e


class SAGEConv(Module):
    """GraphSAGE convolution.

    ``out = W_l @ agg(x, edges) + W_r @ x (+ b)`` where ``agg`` is the
    ``sum`` or ``mean`` of source-node features per destination node.

    Parameters
    ----------
    in_channels, out_channels:
        Feature dimensions.
    aggr:
        ``"mean"`` (GraphSAGE default) or ``"sum"``.
    rng:
        Initialisation generator (run-stable default).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        *,
        aggr: str = "mean",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if aggr not in ("mean", "sum"):
            raise ConfigurationError(f"unknown aggregation {aggr!r}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.aggr = aggr
        self.lin_l = Linear(in_channels, out_channels, rng=rng)  # neighbours
        self.lin_r = Linear(in_channels, out_channels, bias=False, rng=rng)  # self

    def aggregate(self, x: Tensor, edge_index) -> Tensor:
        """Aggregate source features into destination rows.

        The ``index_add`` here is the non-deterministic kernel; in mean
        mode the sum is divided by the in-degree (clamped at 1), a
        deterministic elementwise op.  In a lockstep run batch the update
        folds every run with its own scheduler stream over the shared
        zeros base, so each run's aggregation is bit-identical to its
        scalar twin's.
        """
        num_nodes = x.shape[-2]
        e = _check_edges(edge_index, num_nodes)
        src, dst = e[0], e[1]
        messages = x.gather_rows(src)
        zeros = Tensor(np.zeros(x.shape[-2:], dtype=x.data.dtype))
        summed = zeros.index_add(dst, messages)
        if self.aggr == "sum":
            return summed
        deg = np.bincount(dst, minlength=num_nodes).astype(x.data.dtype)
        inv = 1.0 / np.maximum(deg, 1.0)
        return summed * Tensor(inv[:, None], dtype=x.data.dtype)

    def forward(self, x: Tensor, edge_index) -> Tensor:
        """One message-passing step over ``(N, in_channels)`` features."""
        agg = self.aggregate(x, edge_index)
        return self.lin_l(agg) + self.lin_r(x)


class GraphSAGE(Module):
    """The paper's model: two SAGEConv layers with ReLU, log-softmax head.

    Parameters
    ----------
    in_channels:
        Input feature dimension (1 433 for Cora).
    hidden_channels:
        Hidden width.
    num_classes:
        Output classes (7 for Cora).
    aggr:
        Aggregation for both layers.
    """

    def __init__(
        self,
        in_channels: int,
        hidden_channels: int,
        num_classes: int,
        *,
        aggr: str = "mean",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.conv1 = SAGEConv(in_channels, hidden_channels, aggr=aggr, rng=rng)
        self.conv2 = SAGEConv(hidden_channels, num_classes, aggr=aggr, rng=rng)

    def forward(self, x: Tensor, edge_index) -> Tensor:
        """Return ``(N, num_classes)`` log-probabilities."""
        h = self.conv1(x, edge_index).relu()
        h = self.conv2(h, edge_index)
        return h.log_softmax(dim=-1)
