"""Immutable undirected graph with edge-list and CSR views."""

from __future__ import annotations

import numpy as np

from ..errors import GraphError

__all__ = ["Graph"]


class Graph:
    """An undirected graph stored as a symmetric directed edge list.

    Parameters
    ----------
    num_nodes:
        Node count.
    edges:
        ``(E, 2)`` array of undirected edges (each stored once); self-loops
        and duplicates are rejected.

    Attributes
    ----------
    edge_index:
        ``(2, 2E)`` symmetric directed edge list (both directions),
        lexicographically sorted by (dst, src) — a canonical order so the
        deterministic experiments are stable across sessions.
    """

    def __init__(self, num_nodes: int, edges) -> None:
        if num_nodes < 1:
            raise GraphError(f"num_nodes must be >= 1, got {num_nodes}")
        e = np.asarray(edges)
        if e.size == 0:
            e = np.empty((0, 2), dtype=np.int64)
        if e.ndim != 2 or e.shape[1] != 2:
            raise GraphError(f"edges must be (E, 2), got {e.shape}")
        if not np.issubdtype(e.dtype, np.integer):
            raise GraphError(f"edges must be integer, got dtype {e.dtype}")
        if e.size and (e.min() < 0 or e.max() >= num_nodes):
            raise GraphError(f"edge endpoints must be in [0, {num_nodes})")
        if e.size and np.any(e[:, 0] == e[:, 1]):
            raise GraphError("self-loops are not allowed")
        canon = np.sort(e, axis=1)
        if e.size and np.unique(canon, axis=0).shape[0] != canon.shape[0]:
            raise GraphError("duplicate edges are not allowed")
        self.num_nodes = int(num_nodes)
        self._undirected = canon.astype(np.int64)
        both = np.concatenate([canon, canon[:, ::-1]], axis=0)
        order = np.lexsort((both[:, 0], both[:, 1]))
        both = both[order]
        self.edge_index = both.T.copy()  # (2, 2E): row0 = src, row1 = dst
        self._degree = np.bincount(self.edge_index[1], minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(self._degree, out=indptr[1:])
        self._indptr = indptr

    # ------------------------------------------------------------ accessors
    @property
    def num_edges(self) -> int:
        """Undirected edge count."""
        return self._undirected.shape[0]

    @property
    def num_directed_edges(self) -> int:
        """Directed (symmetrised) edge count = 2 * num_edges."""
        return self.edge_index.shape[1]

    def degree(self) -> np.ndarray:
        """In-degree (= out-degree) per node."""
        return self._degree.copy()

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbor ids of ``node``."""
        if not 0 <= node < self.num_nodes:
            raise GraphError(f"node {node} out of range")
        lo, hi = self._indptr[node], self._indptr[node + 1]
        return self.edge_index[0, lo:hi].copy()

    def adjacency_matrix(self) -> np.ndarray:
        """Dense symmetric 0/1 adjacency (small graphs / tests only)."""
        a = np.zeros((self.num_nodes, self.num_nodes), dtype=np.int8)
        a[self.edge_index[1], self.edge_index[0]] = 1
        return a

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"
