"""Batched↔scalar bit-exact equivalence of the run-axis engine.

The batched engine's contract (see ``repro/gpusim/scheduler.py`` and
``repro/fp/summation.py``) is that every batched operation reproduces the
per-run scalar results **bit for bit**: same RNG draws per run (one
scheduler stream each, in run order), same elementwise float32 transforms,
same deterministic sorts.  These tests pin that contract across
algorithms, dtypes (f32/f64) and odd sizes (0, 1, non-powers-of-two).
"""

import numpy as np
import pytest

from repro.errors import SchedulerError, ShapeError
from repro.fp.summation import (
    batched_tree_fold,
    iter_run_chunks,
    permuted_sum,
    permuted_sums,
    tree_fold,
)
from repro.gpusim import (
    LaunchConfig,
    WaveScheduler,
    WaveSchedulerBatch,
    atomic_fold,
    batched_atomic_fold,
    get_device,
)
from repro.ops import (
    conv_transpose1d,
    conv_transpose2d,
    conv_transpose_runs,
    index_add,
    index_add_runs,
    scatter_reduce,
    scatter_reduce_runs,
)
from repro.ops.segmented import SegmentPlan
from repro.runtime import RunContext

SIZES = (0, 1, 7, 64, 1000)
DTYPES = (np.float32, np.float64)


def make_launch(nb=64, tpb=64, device="v100"):
    return LaunchConfig(device=get_device(device), n_blocks=nb, threads_per_block=tpb)


class TestIterRunChunks:
    def test_covers_all_runs_once(self):
        spans = list(iter_run_chunks(10, 3, chunk_runs=4))
        assert spans == [(0, 4), (4, 8), (8, 10)]

    def test_zero_runs(self):
        assert list(iter_run_chunks(0, 5)) == []

    def test_budget_derived_chunk(self):
        spans = list(iter_run_chunks(7, 10**9))
        assert spans == [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]

    def test_invalid_chunk(self):
        with pytest.raises(Exception):
            list(iter_run_chunks(3, 4, chunk_runs=0))


class TestPermutedSums:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("n", SIZES)
    def test_matches_scalar_bitwise(self, dtype, n):
        rng = np.random.default_rng(n + 17)
        x = rng.standard_normal(n).astype(dtype)
        perms = np.stack([rng.permutation(n) for _ in range(5)]) if n else np.empty((5, 0), dtype=np.int64)
        batched = permuted_sums(x, perms)
        scalar = np.array([permuted_sum(x, p) for p in perms])
        np.testing.assert_array_equal(batched, scalar)

    def test_chunking_does_not_change_bits(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(33)
        perms = np.stack([rng.permutation(33) for _ in range(9)])
        a = permuted_sums(x, perms, chunk_runs=2)
        b = permuted_sums(x, perms, chunk_runs=None)
        np.testing.assert_array_equal(a, b)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ShapeError):
            permuted_sums(np.ones(4), np.zeros((2, 3), dtype=np.int64))
        with pytest.raises(ShapeError):
            permuted_sums(np.ones(4), np.arange(4))

    def test_out_of_range_rejected(self):
        perms = np.array([[0, 1, 4]])
        with pytest.raises(Exception):
            permuted_sums(np.ones(3), perms)


class TestBatchedTreeFold:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("n", SIZES)
    def test_matches_scalar_bitwise(self, dtype, n):
        rng = np.random.default_rng(n + 5)
        mat = rng.standard_normal((6, n)).astype(dtype)
        batched = batched_tree_fold(mat)
        scalar = np.array([tree_fold(row) for row in mat])
        np.testing.assert_array_equal(batched, scalar)

    def test_chunked(self):
        mat = np.random.default_rng(1).standard_normal((7, 19)).astype(np.float32)
        np.testing.assert_array_equal(
            batched_tree_fold(mat, chunk_runs=3), batched_tree_fold(mat)
        )


class TestBatchedAtomicFold:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("n", (1, 7, 64, 1000))
    def test_matches_scalar_bitwise(self, dtype, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n).astype(dtype)
        orders = np.stack([rng.permutation(n) for _ in range(4)])
        batched = batched_atomic_fold(x, orders)
        scalar = np.array([atomic_fold(x, o) for o in orders])
        np.testing.assert_array_equal(batched, scalar)

    def test_shape_validation(self):
        with pytest.raises(SchedulerError):
            batched_atomic_fold(np.ones(3), np.zeros((2, 4), dtype=np.int64))


class TestSchedulerBatchEquivalence:
    """WaveSchedulerBatch row r == fresh WaveScheduler on stream r."""

    @pytest.mark.parametrize("contention", (0.0, 0.5, 1.0))
    @pytest.mark.parametrize("nb,tpb", [(1, 32), (5, 64), (100, 48), (313, 64)])
    def test_block_orders(self, nb, tpb, contention):
        launch = make_launch(nb, tpb)
        ca, cb = RunContext(7), RunContext(7)
        batched = WaveSchedulerBatch(launch, ca).block_completion_orders(
            6, contention=contention
        )
        for r in range(6):
            scalar = WaveScheduler(launch, cb.scheduler()).block_completion_order(
                contention=contention
            )
            np.testing.assert_array_equal(batched[r], scalar)

    @pytest.mark.parametrize("contention", (0.0, 1.0))
    @pytest.mark.parametrize(
        "nb,tpb,n",
        [(5, 64, 17), (5, 64, 320), (100, 48, 4000), (4, 33, 130), (2, 32, 64)],
    )
    def test_thread_orders(self, nb, tpb, n, contention):
        launch = make_launch(nb, tpb)
        ca, cb = RunContext(9), RunContext(9)
        batched = WaveSchedulerBatch(launch, ca).thread_retirement_orders(
            5, n, contention=contention
        )
        for r in range(5):
            scalar = WaveScheduler(launch, cb.scheduler()).thread_retirement_order(
                n, contention=contention
            )
            np.testing.assert_array_equal(batched[r], scalar)
            assert sorted(batched[r].tolist()) == list(range(n))

    def test_block_arrival_times(self):
        launch = make_launch(37, 64)
        ca, cb = RunContext(2), RunContext(2)
        batched = WaveSchedulerBatch(launch, ca).block_arrival_times_batch(4, 0.3)
        for r in range(4):
            scalar = WaveScheduler(launch, cb.scheduler()).block_arrival_times(0.3)
            np.testing.assert_array_equal(batched[r], scalar)

    def test_warp_orders_expand_to_thread_orders(self):
        # warp-granular fast path == element orders, warp-aligned geometry
        launch = make_launch(10, 64)
        n = 640
        ca, cb = RunContext(4), RunContext(4)
        warp = launch.device.warp_size
        worders = WaveSchedulerBatch(launch, ca).thread_retirement_warp_orders(5, n)
        eorders = WaveSchedulerBatch(launch, cb).thread_retirement_orders(5, n)
        for r in range(5):
            expanded = (worders[r][:, None] * warp + np.arange(warp)).ravel()
            np.testing.assert_array_equal(expanded, eorders[r])

    def test_warp_orders_reject_misaligned(self):
        launch = make_launch(10, 48)  # tpb not a multiple of 32
        with pytest.raises(SchedulerError):
            WaveSchedulerBatch(launch, RunContext(0)).thread_retirement_warp_orders(3, 96)
        launch = make_launch(10, 64)
        with pytest.raises(SchedulerError):
            WaveSchedulerBatch(launch, RunContext(0)).thread_retirement_warp_orders(3, 70)

    def test_chunking_preserves_bits(self):
        launch = make_launch(29, 64)
        ca, cb = RunContext(6), RunContext(6)
        a = WaveSchedulerBatch(launch, ca, chunk_runs=2).block_completion_orders(7)
        b = WaveSchedulerBatch(launch, cb).block_completion_orders(7)
        np.testing.assert_array_equal(a, b)

    def test_deterministic_device(self):
        import repro.lpu  # registers the lpu device  # noqa: F401

        launch = LaunchConfig(device=get_device("lpu"), n_blocks=4, threads_per_block=1)
        orders = WaveSchedulerBatch(launch, RunContext(0)).block_completion_orders(3)
        np.testing.assert_array_equal(orders[0], orders[1])
        np.testing.assert_array_equal(orders[1], orders[2])

    def test_zero_runs(self):
        launch = make_launch(16, 64)
        batch = WaveSchedulerBatch(launch, RunContext(0))
        assert batch.block_arrival_times_batch(0).shape == (0, 16)
        assert batch.block_completion_orders(0).shape == (0, 16)
        assert batch.thread_retirement_orders(0, 100).shape == (0, 100)

    def test_runs_apis_return_independent_arrays(self):
        rng = np.random.default_rng(2)
        idx = rng.integers(0, 10, 40)
        src = rng.standard_normal(40).astype(np.float32)
        inp = rng.standard_normal(10).astype(np.float32)
        outs = scatter_reduce_runs(inp, 0, idx, src, "sum", 3, ctx=RunContext(1))
        assert all(o.base is None for o in outs)

    def test_capacity_validation(self):
        launch = make_launch(2, 64)
        with pytest.raises(SchedulerError):
            WaveSchedulerBatch(launch, RunContext(0)).thread_retirement_orders(2, 1000)
        with pytest.raises(SchedulerError):
            WaveSchedulerBatch(launch, RunContext(0)).thread_retirement_orders(2, 0)


class TestSegmentPlanFoldRuns:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("reduce", ("sum", "prod", "amax", "amin"))
    def test_matches_scalar_bitwise(self, dtype, reduce):
        rng = np.random.default_rng(3)
        n, t = 50, 11
        idx = rng.integers(0, t, n)
        plan = SegmentPlan(idx, t)
        vals = rng.standard_normal(n).astype(dtype)
        orders = np.stack([plan.source_order(plan.multi_targets, rng) for _ in range(4)])
        batched = plan.fold_runs(vals, orders, reduce=reduce)
        for r in range(4):
            scalar = plan.fold(vals, order=orders[r], reduce=reduce)
            np.testing.assert_array_equal(batched[r], scalar)

    def test_with_init_and_payload(self):
        rng = np.random.default_rng(8)
        n, t = 30, 9
        idx = rng.integers(0, t, n)
        plan = SegmentPlan(idx, t)
        vals = rng.standard_normal((n, 4)).astype(np.float32)
        init = rng.standard_normal((t, 4)).astype(np.float32)
        orders = np.stack([plan.source_order(plan.multi_targets, rng) for _ in range(3)])
        batched = plan.fold_runs(vals, orders, reduce="sum", init=init, chunk_runs=2)
        for r in range(3):
            scalar = plan.fold(vals, order=orders[r], reduce="sum", init=init)
            np.testing.assert_array_equal(batched[r], scalar)

    def test_segment_accessors(self):
        idx = np.array([2, 0, 2, 1, 2])
        plan = SegmentPlan(idx, 4)
        np.testing.assert_array_equal(plan.segment_starts, [0, 1, 2, 5])
        np.testing.assert_array_equal(plan.segment_ends, [1, 2, 5, 5])
        # last source position of each non-empty segment, in sorted order
        has = plan.counts > 0
        last = plan.order[plan.segment_ends[has] - 1]
        assert set(last.tolist()) <= set(range(5))


class TestOpRunsEquivalence:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_scatter_reduce_runs(self, dtype):
        rng = np.random.default_rng(12)
        n, t = 400, 80
        idx = rng.integers(0, t, n)
        src = rng.standard_normal(n).astype(dtype)
        inp = rng.standard_normal(t).astype(dtype)
        plan = SegmentPlan(idx, t)
        ca, cb = RunContext(21), RunContext(21)
        batched = scatter_reduce_runs(inp, 0, idx, src, "sum", 6, plan=plan, ctx=ca)
        for r in range(6):
            scalar = scatter_reduce(
                inp, 0, idx, src, "sum", plan=plan, ctx=cb, deterministic=False
            )
            np.testing.assert_array_equal(batched[r], scalar)

    def test_scatter_reduce_runs_mean_no_self(self):
        rng = np.random.default_rng(13)
        n, t = 120, 30
        idx = rng.integers(0, t, n)
        src = rng.standard_normal((n, 3)).astype(np.float32)
        inp = rng.standard_normal((t, 3)).astype(np.float32)
        ca, cb = RunContext(5), RunContext(5)
        batched = scatter_reduce_runs(
            inp, 0, idx, src, "mean", 4, include_self=False, ctx=ca
        )
        for r in range(4):
            scalar = scatter_reduce(
                inp, 0, idx, src, "mean", include_self=False, ctx=cb,
                deterministic=False,
            )
            np.testing.assert_array_equal(batched[r], scalar)

    def test_index_add_runs(self):
        rng = np.random.default_rng(31)
        n, t = 90, 40
        idx = rng.integers(0, t, n)
        src = rng.standard_normal((n, 8)).astype(np.float32)
        inp = rng.standard_normal((t, 8)).astype(np.float32)
        plan = SegmentPlan(idx, t)
        ca, cb = RunContext(33), RunContext(33)
        batched = index_add_runs(inp, 0, idx, src, 5, plan=plan, ctx=ca)
        for r in range(5):
            scalar = index_add(
                inp, 0, idx, src, plan=plan, ctx=cb, deterministic=False
            )
            np.testing.assert_array_equal(batched[r], scalar)

    def test_conv_transpose_runs(self):
        rng = np.random.default_rng(41)
        x = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
        w = rng.standard_normal((3, 4, 3, 3)).astype(np.float32)
        ca, cb = RunContext(51), RunContext(51)
        ref, outs = conv_transpose_runs(x, w, nd=2, n_runs=5, stride=2, padding=1, ctx=ca)
        ref_scalar = conv_transpose2d(x, w, stride=2, padding=1, deterministic=True)
        np.testing.assert_array_equal(ref, ref_scalar)
        for r in range(5):
            scalar = conv_transpose2d(
                x, w, stride=2, padding=1, deterministic=False, ctx=cb
            )
            np.testing.assert_array_equal(outs[r], scalar)

    def test_conv_transpose_runs_with_bias(self):
        rng = np.random.default_rng(43)
        x = rng.standard_normal((1, 2, 5)).astype(np.float32)
        w = rng.standard_normal((2, 3, 4)).astype(np.float32)
        b = rng.standard_normal(3).astype(np.float32)
        ca, cb = RunContext(3), RunContext(3)
        ref, outs = conv_transpose_runs(x, w, nd=1, n_runs=3, bias=b, stride=3, ctx=ca)
        for r in range(3):
            scalar_out = conv_transpose1d(
                x, w, bias=b, stride=3, deterministic=False, ctx=cb
            )
            np.testing.assert_array_equal(outs[r], scalar_out)
