"""Shared machinery for the Vs-distribution experiments (Figs 1-2, MaxVs).

The paper's protocol (§III-C): generate arrays, apply the non-deterministic
reduction many times per array, and compute ``Vs`` against the
deterministic SPTR result.  Because the per-block stage of SPA is
deterministic, its partials are computed **once** per array and only the
combine order is re-sampled per run — the honest shortcut that makes the
scaled experiments fast without changing a single result bit.

All helpers run on the batched run-axis engine, batched across **arrays as
well as runs**: an experiment's whole ``(arrays, runs)`` grid is one pass
(:func:`spa_vs_samples_arrays` / :func:`ao_vs_samples_arrays`) — the block
partials of every array evaluate in lockstep
(:func:`~repro.fp.summation.block_partials_runs`), all ``A x R`` execution
orders are sampled through one :class:`~repro.gpusim.scheduler.
WaveSchedulerBatch` (in run order, or from explicit pre-drawn per-run
streams when the caller interleaves several batches' draws), and the folds
run through :func:`~repro.gpusim.atomics.batched_atomic_fold`'s per-run
values mode, processed in run chunks so memory stays bounded at
``n = 10**6``.  Per-(array, run) results are bit-identical to looping
``WaveScheduler`` + ``atomic_fold`` (or the reduction classes) —
``tests/test_experiment_helpers.py`` and ``tests/test_batched_engine.py``
pin this.  The single-array :func:`spa_vs_samples` / :func:`ao_vs_samples`
are the ``A = 1`` special case of the same pass.

:func:`spa_vs_samples_devices` adds the **device axis** (figS1): one
``(device, array, run)`` grid per call, drawing from anchored device-plane
streams (:meth:`repro.runtime.RunContext.device_stream`) instead of the
shared sequential ladder, pooling same-geometry partials/baselines across
devices and pooling a deterministic device's single schedule across the
whole run axis.  ``tests/test_device_axis.py`` pins its cell contract.
"""

from __future__ import annotations

import numpy as np

from ..fp.summation import (
    DEFAULT_RUN_CHUNK_ELEMENTS,
    block_partials_runs,
    iter_run_chunks,
    tree_fold,
)
from ..gpusim.atomics import batched_atomic_fold
from ..gpusim.device import get_device
from ..gpusim.kernel import LaunchConfig
from ..gpusim.scheduler import WaveSchedulerBatch
from ..metrics.scalar import scalar_variability_many
from ..runtime import RunContext

__all__ = [
    "sample_array",
    "spa_vs_samples",
    "spa_vs_samples_arrays",
    "spa_vs_samples_devices",
    "ao_vs_samples",
    "ao_vs_samples_arrays",
    "ao_vs_samples_devices",
]


def sample_array(rng: np.random.Generator, n: int, distribution: str) -> np.ndarray:
    """Draw the experiment input (FP64)."""
    if distribution == "uniform":
        return rng.uniform(0.0, 10.0, n)
    if distribution == "normal":
        return rng.standard_normal(n)
    if distribution == "boltzmann":
        return rng.exponential(1.0, n)
    raise ValueError(f"unknown distribution {distribution!r}")


def _spa_launch(dev, n: int, threads_per_block: int, n_blocks: int | None) -> LaunchConfig:
    nb = n_blocks or (n + threads_per_block - 1) // threads_per_block
    return LaunchConfig(
        device=dev, n_blocks=nb, threads_per_block=threads_per_block,
        shared_mem_bytes=min(threads_per_block * 8, dev.shared_mem_per_block),
    )


def spa_vs_samples_arrays(
    xs: np.ndarray,
    n_runs: int,
    ctx: RunContext,
    *,
    device: str = "v100",
    threads_per_block: int = 64,
    n_blocks: int | None = None,
    rngs=None,
) -> np.ndarray:
    """``Vs`` of ``n_runs`` SPA sums of every row of ``xs``, vs SPTR.

    One ``(arrays, runs, n)`` pass: row partials in lockstep, all
    ``A x n_runs`` combine orders drawn through one scheduler batch
    (array-major run order — array 0's runs first — matching a per-array
    loop's stream consumption; explicit ``rngs`` override the stream
    source per run), and the combines folded with per-run values.  Entry
    ``[a, r]`` is bit-identical to run ``r`` of
    ``spa_vs_samples(xs[a], ...)``.

    Returns
    -------
    numpy.ndarray
        ``(A, n_runs)`` Vs samples.
    """
    xs = np.asarray(xs)
    n_arrays, n = xs.shape
    dev = get_device(device)
    launch = _spa_launch(dev, n, threads_per_block, n_blocks)
    nb = launch.n_blocks
    partials = block_partials_runs(xs, nb)  # (A, nb), deterministic
    s_d = np.array([tree_fold(partials[a]) for a in range(n_arrays)])
    batch = WaveSchedulerBatch(launch, ctx)
    total = n_arrays * n_runs
    sums = np.empty(total, dtype=np.float64)
    for lo, hi in iter_run_chunks(total, nb):
        orders = batch.block_completion_orders(
            hi - lo, contention=0.0,
            rngs=None if rngs is None else list(rngs[lo:hi]),
        )
        arr_of_run = np.arange(lo, hi) // max(n_runs, 1)
        sums[lo:hi] = batched_atomic_fold(partials[arr_of_run], orders)
    return scalar_variability_many(sums.reshape(n_arrays, n_runs), s_d[:, None])


def spa_vs_samples_devices(
    xs: np.ndarray,
    n_runs: int,
    ctx: RunContext,
    *,
    devices,
    threads_per_block: int = 64,
    run_lo: int = 0,
    run_hi: int | None = None,
    anchor: int = 0,
) -> dict[str, np.ndarray]:
    """``Vs`` of SPA sums of every row of ``xs`` on every device at once.

    The device-axis batched sweep (figS1): one ``(device, array, run)``
    grid folded through the run-axis engine with **anchored device-plane
    streams** — every ``(device, array)`` cell draws its whole run axis
    from its own :meth:`~repro.runtime.RunContext.device_stream` under
    the cell contract catalogued in :mod:`repro.gpusim.scheduler` (raw
    rotations for all runs up front, then prefix-stable float32 block
    rows in run order).  Because no cell shares a stream, the returned
    rows of any device are bit-identical no matter which other devices
    are swept, and ``run_lo``/``run_hi`` select any window of the run
    axis bit-identically to slicing the full sweep — the shard
    derivation of the device experiments.

    Same-geometry work is pooled across devices: block partials and the
    deterministic SPTR baselines depend only on the grid size, so all
    devices sharing one (clamped) launch geometry compute them once.  A
    ``deterministic`` device draws nothing — its single schedule is
    evaluated once and pooled across the run axis (the zero-variability
    LPU row).

    Returns
    -------
    dict
        ``{device_name: (A, run_hi - run_lo) float64 Vs}`` in the order
        of ``devices``.
    """
    xs = np.asarray(xs)
    n_arrays, n = xs.shape
    if run_hi is None:
        run_hi = n_runs
    if not 0 <= run_lo <= run_hi <= n_runs:
        raise ValueError(
            f"run window [{run_lo}, {run_hi}) outside [0, {n_runs})"
        )
    window = run_hi - run_lo
    # Pool the deterministic per-array stage by launch geometry: partials
    # and SPTR baselines are pure functions of (xs, n_blocks).
    partial_pool: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def _pooled(nb: int) -> tuple[np.ndarray, np.ndarray]:
        if nb not in partial_pool:
            partials = block_partials_runs(xs, nb)
            s_d = np.array([tree_fold(partials[a]) for a in range(n_arrays)])
            partial_pool[nb] = (partials, s_d)
        return partial_pool[nb]

    out: dict[str, np.ndarray] = {}
    for device in devices:
        dev = get_device(device)
        tpb = min(threads_per_block, dev.max_threads_per_block)
        launch = _spa_launch(dev, n, tpb, None)
        nb = launch.n_blocks
        partials, s_d = _pooled(nb)
        batch = WaveSchedulerBatch(launch, None)
        need_u = batch.needs_block_draw(0.0)
        rotate = batch.needs_rotation
        if not rotate and not need_u:
            # Statically scheduled hardware: the one schedule every run
            # produces, computed once and pooled over (arrays, runs).
            order = batch.block_completion_orders_from_draws(
                np.zeros(1, dtype=np.int64), None, 0.0
            )
            sums = batched_atomic_fold(partials, np.broadcast_to(order, (n_arrays, nb)))
            out[device] = np.ascontiguousarray(
                np.broadcast_to(
                    scalar_variability_many(sums, s_d)[:, None], (n_arrays, window)
                )
            )
            continue
        rngs = [
            ctx.device_stream(device, a, anchor=anchor) for a in range(n_arrays)
        ]
        rots = np.zeros((n_arrays, n_runs), dtype=np.int64)
        if rotate:
            for a, rng in enumerate(rngs):
                rots[a] = rng.integers(dev.num_gpcs, size=n_runs)
        if need_u:
            # Advance each cell stream past rows [0, run_lo) — row draws
            # are prefix-stable, so chunked discards reproduce the full
            # matrix's bits (the cell contract).
            scratch_rows = None
            for a, rng in enumerate(rngs):
                skip = run_lo
                while skip:
                    rows = min(skip, max(1, DEFAULT_RUN_CHUNK_ELEMENTS // nb))
                    if scratch_rows is None or len(scratch_rows) < rows:
                        scratch_rows = np.empty((rows, nb), dtype=np.float32)
                    rng.random(out=scratch_rows[:rows], dtype=np.float32)
                    skip -= rows
        sums = np.empty((n_arrays, window), dtype=np.float64)
        for lo, hi in iter_run_chunks(window, n_arrays * nb):
            rows = hi - lo
            if need_u:
                u = np.empty((n_arrays, rows, nb), dtype=np.float32)
                for a, rng in enumerate(rngs):
                    rng.random(out=u[a], dtype=np.float32)
                u_flat = u.reshape(n_arrays * rows, nb)
            else:
                u_flat = None
            orders = batch.block_completion_orders_from_draws(
                rots[:, run_lo + lo : run_lo + hi].reshape(-1), u_flat, 0.0
            ).reshape(n_arrays, rows, nb)
            for a in range(n_arrays):
                # Shared-values fold per array (cheaper than materialising
                # per-run value rows for the whole chunk).
                sums[a, lo:hi] = batched_atomic_fold(partials[a], orders[a])
        out[device] = scalar_variability_many(sums, s_d[:, None])
    return out


def spa_vs_samples(
    x: np.ndarray,
    n_runs: int,
    ctx: RunContext,
    *,
    device: str = "v100",
    threads_per_block: int = 64,
    n_blocks: int | None = None,
) -> np.ndarray:
    """``Vs`` of ``n_runs`` SPA sums of ``x`` against the SPTR result.

    Bit-identical to calling ``SinglePassAtomic.sum`` in a loop (the block
    partials are deterministic and hoisted out of the loop; the run axis is
    batched).  The ``A = 1`` case of :func:`spa_vs_samples_arrays`.
    """
    return spa_vs_samples_arrays(
        np.asarray(x)[None], n_runs, ctx,
        device=device, threads_per_block=threads_per_block, n_blocks=n_blocks,
    )[0]


def ao_vs_samples_arrays(
    xs: np.ndarray,
    n_runs: int,
    ctx: RunContext,
    *,
    device: str = "v100",
    threads_per_block: int = 64,
    rngs=None,
) -> np.ndarray:
    """``Vs`` of ``n_runs`` AO sums of every row of ``xs``, vs SPTR.

    The AO twin of :func:`spa_vs_samples_arrays`: all ``A x n_runs``
    retirement orders come from one scheduler batch, with the
    warp-granular fast path (whole warp slices gathered in sorted-key
    order) whenever the geometry is warp-aligned.

    Returns
    -------
    numpy.ndarray
        ``(A, n_runs)`` Vs samples.
    """
    xs = np.asarray(xs)
    n_arrays, n = xs.shape
    dev = get_device(device)
    launch = _spa_launch(dev, n, threads_per_block, None)
    partials = block_partials_runs(xs, launch.n_blocks)
    s_d = np.array([tree_fold(partials[a]) for a in range(n_arrays)])
    batch = WaveSchedulerBatch(launch, ctx)
    total = n_arrays * n_runs
    sums = np.empty(total, dtype=np.float64)
    warp = dev.warp_size
    if threads_per_block % warp == 0 and n % warp == 0:
        # Warp-granular fast path: a retirement order is warp slices in
        # sorted-key sequence with lanes in id order, so gathering x by
        # whole warp rows reproduces x[order] bit-for-bit without the
        # element-level permutation.
        xw = np.ascontiguousarray(xs).reshape(n_arrays, -1, warp)
        for lo, hi in iter_run_chunks(total, n):
            worders = batch.thread_retirement_warp_orders(
                hi - lo, n, contention=1.0,
                rngs=None if rngs is None else list(rngs[lo:hi]),
            )
            for i in range(hi - lo):
                folded = np.add.accumulate(xw[(lo + i) // n_runs][worders[i]].ravel())
                sums[lo + i] = folded[-1]
    else:
        for lo, hi in iter_run_chunks(total, n):
            orders = batch.thread_retirement_orders(
                hi - lo, n, contention=1.0,
                rngs=None if rngs is None else list(rngs[lo:hi]),
            )
            arr_of_run = np.arange(lo, hi) // max(n_runs, 1)
            sums[lo:hi] = batched_atomic_fold(xs[arr_of_run], orders)
    return scalar_variability_many(sums.reshape(n_arrays, n_runs), s_d[:, None])


def ao_vs_samples_devices(
    xs: np.ndarray,
    n_runs: int,
    ctx: RunContext,
    *,
    devices,
    threads_per_block: int = 64,
    run_lo: int = 0,
    run_hi: int | None = None,
    anchor: int = 0,
    plane: str | None = None,
) -> dict[str, np.ndarray]:
    """``Vs`` of AO sums of every row of ``xs`` on every device at once.

    The AO twin of :func:`spa_vs_samples_devices`, with a **run-granular
    device-plane layout**: cell ``(a, r)`` of a device's grid draws its
    retirement order from its own anchored stream,
    ``ctx.device_stream(plane_name, cell=a * n_runs + r, anchor=anchor)``
    — one stream per (array, run) rather than per (array).  Because no
    two runs share a stream, any ``[run_lo, run_hi)`` window is
    bit-identical to slicing the full sweep by construction (no
    prefix-stable row discipline needed), which is the shard derivation.

    ``plane`` names the device plane the streams come from; it defaults
    to the device's own name.  A **shared** plane across devices gives
    every device identical stream draws for identical cells — the
    warp-ablation contract: two devices differing only in warp size then
    produce orders from the same raw sequence and diverge only in
    retirement granularity (pinned in ``tests/test_device_axis.py``).

    Returns
    -------
    dict
        ``{device_name: (A, run_hi - run_lo) float64 Vs}`` in the order
        of ``devices``.
    """
    xs = np.asarray(xs)
    n_arrays, _ = xs.shape
    if run_hi is None:
        run_hi = n_runs
    if not 0 <= run_lo <= run_hi <= n_runs:
        raise ValueError(
            f"run window [{run_lo}, {run_hi}) outside [0, {n_runs})"
        )
    window = run_hi - run_lo
    out: dict[str, np.ndarray] = {}
    for device in devices:
        dev = get_device(device)
        name = plane or device
        rngs = [
            ctx.device_stream(name, a * n_runs + r, anchor=anchor)
            for a in range(n_arrays)
            for r in range(run_lo, run_hi)
        ]
        out[device] = ao_vs_samples_arrays(
            xs, window, ctx,
            device=device,
            threads_per_block=min(threads_per_block, dev.max_threads_per_block),
            rngs=rngs,
        )
    return out


def ao_vs_samples(
    x: np.ndarray,
    n_runs: int,
    ctx: RunContext,
    *,
    device: str = "v100",
    threads_per_block: int = 64,
) -> np.ndarray:
    """``Vs`` of ``n_runs`` AO sums of ``x`` against the SPTR result."""
    return ao_vs_samples_arrays(
        np.asarray(x)[None], n_runs, ctx,
        device=device, threads_per_block=threads_per_block,
    )[0]
