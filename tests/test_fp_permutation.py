"""Tests for the Table 1 permutation-effect primitives."""

import numpy as np
import pytest

from repro.fp import PermutationEffect, permutation_effects, permutation_spread
from repro.runtime import RunContext


class TestPermutationEffects:
    def test_row_count(self, ctx):
        rows = permutation_effects([100, 1000], repeats=3, ctx=ctx)
        assert len(rows) == 6

    def test_rows_are_size_major(self, ctx):
        rows = permutation_effects([10, 20], repeats=2, ctx=ctx)
        assert [r.size for r in rows] == [10, 10, 20, 20]

    def test_delta_consistent_with_sums(self, ctx):
        for row in permutation_effects([1000], repeats=2, ctx=ctx):
            assert row.delta == row.s_nd - row.s_d

    def test_vs_zero_iff_equal_magnitude(self, ctx):
        for row in permutation_effects([100_000], repeats=3, ctx=ctx):
            if row.s_nd == row.s_d:
                assert row.vs == 0.0

    def test_large_sizes_vary(self, ctx):
        rows = permutation_effects([100_000], repeats=5, ctx=ctx)
        assert any(r.delta != 0 for r in rows)

    def test_deltas_grow_with_size(self, ctx):
        # Paper Table 1 shape: typical |delta| increases with n.
        rows = permutation_effects([100, 1_000_000], repeats=4, ctx=ctx)
        small = max(abs(r.delta) for r in rows if r.size == 100)
        large = max(abs(r.delta) for r in rows if r.size == 1_000_000)
        assert large > small

    def test_cp2k_tolerance_exceeded_at_scale(self, ctx):
        # The paper's headline: deltas can exceed the 1e-14 tolerances of
        # quantum chemistry correctness tests.
        rows = permutation_effects([1_000_000], repeats=4, ctx=ctx)
        assert max(abs(r.delta) for r in rows) > 1e-14

    @pytest.mark.parametrize("dist", ["normal", "uniform", "boltzmann"])
    def test_distributions_supported(self, ctx, dist):
        rows = permutation_effects([1000], repeats=1, distribution=dist, ctx=ctx)
        assert len(rows) == 1 and np.isfinite(rows[0].s_d)

    def test_unknown_distribution_raises(self, ctx):
        with pytest.raises(ValueError):
            permutation_effects([10], distribution="cauchy", ctx=ctx)

    def test_reproducible_given_context(self):
        r1 = permutation_effects([1000], repeats=2, ctx=RunContext(7))
        r2 = permutation_effects([1000], repeats=2, ctx=RunContext(7))
        assert [(a.s_nd, a.s_d) for a in r1] == [(b.s_nd, b.s_d) for b in r2]

    def test_effect_dataclass_fields(self, ctx):
        row = permutation_effects([10], repeats=1, ctx=ctx)[0]
        assert isinstance(row, PermutationEffect)
        assert row.size == 10


class TestPermutationSpread:
    def test_shape_and_dtype(self, ctx):
        out = permutation_spread(ctx.data().standard_normal(1000), 20, ctx=ctx)
        assert out.shape == (20,) and out.dtype == np.float64

    def test_spread_centred_near_zero(self, ctx):
        out = permutation_spread(ctx.data().standard_normal(100_000), 50, ctx=ctx)
        assert abs(np.mean(out)) < 1e-13

    def test_identical_runs_with_reset_context(self):
        x = RunContext(3).data().standard_normal(1000)
        a = permutation_spread(x, 10, ctx=RunContext(3))
        b = permutation_spread(x, 10, ctx=RunContext(3))
        np.testing.assert_array_equal(a, b)
