"""Tests for the incremental sweep farm (:mod:`repro.harness.farm`).

Covers grid expansion (device crossing, cache-cell decomposition, key
identity with the CLI ``run`` path), cache-first execution (cold grid
recomputes everything, warm grid dispatches nothing), digest drift against
previous-generation entries and golden pins, module-granular invalidation
(a single-module edit recomputes only its dependents), and the ``farm``
CLI subcommand including its machine-readable report.
"""

from __future__ import annotations

import copy
import json
import shutil
from pathlib import Path

import pytest

import repro
from repro.errors import ExperimentError
from repro.experiments import get_experiment
from repro.harness import (
    ResultCache,
    SweepFarm,
    cache_key,
    plan_grid,
    result_digest,
)
from repro.harness import fingerprint
from repro.harness.cli import main
from repro.harness.farm import load_pins
from repro.runtime import RunContext

from test_golden_experiments import GOLDEN_SHA256, _OVERRIDES


class FakeExecutor:
    """Serial stand-in for :class:`ShardedExecutor` — counts dispatches."""

    def __init__(self):
        self.calls: list[tuple] = []

    def run(self, experiment_id, *, scale="default", seed=0, **overrides):
        self.calls.append((experiment_id, scale, seed))
        return get_experiment(experiment_id).run(
            scale=scale, ctx=RunContext(seed=seed), **overrides
        )


class ExplodingExecutor:
    """Any dispatch is a test failure: the grid was supposed to be warm."""

    def run(self, *args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("farm dispatched work on a warm grid")


def _dummy_result(cell):
    from repro.experiments.base import ExperimentResult

    return ExperimentResult(
        experiment_id=cell.experiment_id,
        title="dummy",
        scale=cell.scale,
        params={},
        rows=[{"v": 1}],
        seed=cell.seed,
    )


class TestPlanGrid:
    def test_keys_match_the_cli_run_path(self):
        cells = plan_grid(["table2", "fig4"], seeds=(0, 1))
        assert len(cells) == 4
        for cell in cells:
            assert cell.key == cache_key(
                cell.experiment_id, cell.scale, cell.seed, cell.overrides
            )

    def test_unknown_experiment_fails_fast(self):
        with pytest.raises(ExperimentError, match="nosuch"):
            plan_grid(["nosuch"])

    def test_device_axis_expands_per_device(self):
        cells = plan_grid(["figS1", "table2"], devices=("v100", "lpu"))
        figs = [c for c in cells if c.experiment_id == "figS1"]
        t2 = [c for c in cells if c.experiment_id == "table2"]
        assert [c.overrides for c in figs] == [
            {"devices": ("v100",)}, {"devices": ("lpu",)},
        ]
        # No device parameter: one device-free cell, not one per device.
        assert len(t2) == 1 and t2[0].overrides == {}

    def test_decomposing_experiment_expands_cache_cells(self):
        ov = _OVERRIDES["seedens"]
        cells = plan_grid(["seedens"], overrides={"seedens": ov})
        expected = get_experiment("seedens").cache_cells("default", 0, dict(ov))
        assert [c.overrides for c in cells] == expected

    def test_default_grid_covers_every_experiment(self):
        from repro.experiments import list_experiments

        cells = plan_grid()
        assert {c.experiment_id for c in cells} == set(list_experiments())

    def test_cell_id_is_stable_and_readable(self):
        cell = plan_grid(["fig4"], overrides={"fig4": {"n_runs": 3}})[0]
        assert cell.cell_id == 'fig4/default/seed0?{"n_runs":3}'


class TestFarmRuns:
    def test_cold_then_warm(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = FakeExecutor()
        cells = plan_grid(
            ["fig4", "fig5"],
            overrides={"fig4": _OVERRIDES["fig4"], "fig5": _OVERRIDES["fig5"]},
        )
        cold = SweepFarm(cache, executor).run(cells)
        assert cold.n_executed == cold.n_cells == 2
        assert cold.n_hits == 0 and cold.recompute_fraction == 1.0
        assert len(executor.calls) == 2

        warm = SweepFarm(cache, ExplodingExecutor()).run(cells)
        assert warm.n_hits == 2 and warm.n_executed == 0
        assert warm.recompute_fraction == 0.0 and warm.drift == []

    def test_probe_only_never_dispatches(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = plan_grid(["table2"])
        report = SweepFarm(cache, ExplodingExecutor()).run(cells, probe_only=True)
        assert report.probe_only and report.n_misses == 1
        assert report.n_executed == 0
        assert "would recompute" in report.to_markdown()

    def test_farm_entries_serve_cli_lookups(self, tmp_path):
        # The farm stores under exactly the key the CLI run path derives.
        cache = ResultCache(tmp_path)
        cells = plan_grid(["fig5"], overrides={"fig5": _OVERRIDES["fig5"]})
        SweepFarm(cache, FakeExecutor()).run(cells)
        key = cache_key("fig5", "default", 0, dict(_OVERRIDES["fig5"]))
        hit = cache.lookup(key)
        assert hit is not None and hit.experiment_id == "fig5"

    def test_estimated_cost_prefers_recorded_wall_clock(self, tmp_path):
        cache = ResultCache(tmp_path)
        farm = SweepFarm(cache, FakeExecutor())
        cell = plan_grid(["table2"])[0]
        assert farm.estimated_cost(cell, {}) == 1.0  # scale heuristic
        paper = plan_grid(["table2"], scales=("paper",))[0]
        assert farm.estimated_cost(paper, {}) > 1.0
        index = {cell.identity(): [{"elapsed_s": 42.5}]}
        assert farm.estimated_cost(cell, index) == 42.5

    def test_misses_dispatch_largest_cost_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = FakeExecutor()
        farm = SweepFarm(cache, executor)
        cells = plan_grid(
            ["fig4", "fig5"],
            overrides={"fig4": _OVERRIDES["fig4"], "fig5": _OVERRIDES["fig5"]},
        )
        # Seed a prior generation making fig5 the recorded long pole.
        index_entry = lambda c, s: {  # noqa: E731 - local table builder
            c.identity(): [{"elapsed_s": s, "key": "old"}]
        }
        index = {**index_entry(cells[0], 1.0), **index_entry(cells[1], 9.0)}
        schedule = sorted(
            cells, key=lambda c: farm.estimated_cost(c, index), reverse=True
        )
        assert [c.experiment_id for c in schedule] == ["fig5", "fig4"]


class TestGoldenPinsViaFarm:
    def test_all_golden_pins_reproduce_under_the_farm(self, tmp_path):
        """Every pinned experiment, scheduled as farm cells, reproduces its
        golden digest bit for bit — decomposing experiments reassemble
        their per-cell cached results into the pinned full-grid bits."""
        cache = ResultCache(tmp_path)
        ids = sorted(GOLDEN_SHA256)
        cells = plan_grid(ids, overrides=_OVERRIDES)
        report = SweepFarm(cache, FakeExecutor()).run(cells)
        assert report.n_executed == report.n_cells
        for eid in ids:
            exp = get_experiment(eid)
            ov = dict(_OVERRIDES[eid])
            sub = exp.cache_cells("default", 0, ov)
            if sub is None:
                result = cache.lookup(cache_key(eid, "default", 0, ov))
            else:
                parts = [
                    cache.lookup(cache_key(eid, "default", 0, c)) for c in sub
                ]
                assert all(p is not None for p in parts)
                result = exp.combine_cells(
                    "default", exp.resolve_params("default", ov), 0, parts
                )
            assert result is not None
            assert result_digest(result) == GOLDEN_SHA256[eid], eid


class TestDrift:
    def _plant_previous_generation(self, cache, cell, *, perturb_module):
        """Store a doctored earlier-generation entry for ``cell``: same
        identity, different key (old fingerprint), perturbed payload bits
        and one rewritten closure-module hash."""
        result = get_experiment(cell.experiment_id).run(
            scale=cell.scale, ctx=RunContext(seed=cell.seed), **cell.overrides
        )
        old = copy.deepcopy(result)
        old.rows[0]["_stale_generation"] = 1  # bits an old code state made
        old_key = cache_key(
            cell.experiment_id, cell.scale, cell.seed, cell.overrides,
            fingerprint="0" * 64,
        )
        path = cache.store(old_key, old, overrides=cell.overrides)
        entry = json.loads(path.read_text())
        entry["cache"]["modules"][perturb_module] = "0" * 64
        path.write_text(json.dumps(entry))
        return old_key, result_digest(old)

    def test_previous_generation_drift_is_reported(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = plan_grid(["fig5"], overrides={"fig5": _OVERRIDES["fig5"]})[0]
        module = "repro.experiments.fig5"
        old_key, old_digest = self._plant_previous_generation(
            cache, cell, perturb_module=module
        )
        report = SweepFarm(cache, FakeExecutor()).run([cell])
        assert report.n_executed == 1  # old key does not serve the new cell
        assert len(report.drift) == 1
        drift = report.drift[0]
        assert drift.kind == "previous-generation"
        assert drift.cell_id == cell.cell_id
        assert drift.old_digest == old_digest
        assert drift.new_digest == cache.read_meta(cell.key)["digest"]
        assert drift.old_digest != drift.new_digest
        assert module in drift.changed_modules
        assert module in drift.describe()

    def test_bit_identical_previous_generation_is_quiet(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = plan_grid(["fig5"], overrides={"fig5": _OVERRIDES["fig5"]})[0]
        result = get_experiment("fig5").run(
            scale="default", ctx=RunContext(seed=0), **cell.overrides
        )
        old_key = cache_key(
            "fig5", "default", 0, cell.overrides, fingerprint="0" * 64
        )
        cache.store(old_key, result, overrides=cell.overrides)
        report = SweepFarm(cache, FakeExecutor()).run([cell])
        assert report.n_executed == 1 and report.drift == []

    def test_golden_pin_drift_on_execute_and_on_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = plan_grid(["table2"])[0]
        pins = {cell.cell_id: "0" * 64}
        cold = SweepFarm(cache, FakeExecutor(), pins=pins).run([cell])
        assert [d.kind for d in cold.drift] == ["golden-pin"]
        assert cold.drift[0].old_digest == "0" * 64
        warm = SweepFarm(cache, ExplodingExecutor(), pins=pins).run([cell])
        assert [d.kind for d in warm.drift] == ["golden-pin"]
        # A correct pin is quiet on both paths.
        good = {cell.cell_id: cache.read_meta(cell.key)["digest"]}
        assert SweepFarm(cache, ExplodingExecutor(), pins=good).run([cell]).drift == []

    def test_load_pins_flat_and_nested(self, tmp_path):
        flat = tmp_path / "flat.json"
        flat.write_text(json.dumps({"a/default/seed0": "x" * 64}))
        nested = tmp_path / "nested.json"
        nested.write_text(json.dumps({"pins": {"b/default/seed0": "y" * 64}}))
        assert load_pins(flat) == {"a/default/seed0": "x" * 64}
        assert load_pins(nested) == {"b/default/seed0": "y" * 64}
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"pins": {"c": 3}}))
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="digest"):
            load_pins(bad)


class TestModuleGranularInvalidation:
    @pytest.fixture()
    def patched_root(self, tmp_path, monkeypatch):
        src = Path(repro.__file__).resolve().parent
        dst = tmp_path / "repro"
        shutil.copytree(src, dst, ignore=shutil.ignore_patterns("__pycache__"))
        monkeypatch.setattr(fingerprint, "package_root", lambda: (dst, "repro"))
        return dst

    def test_single_module_edit_recomputes_only_dependents(
        self, tmp_path, patched_root
    ):
        """The tentpole property: warm the grid, edit ``_gnn.py``, and only
        the GNN tables' cells go stale — the recompute fraction after a
        single-module edit is far below 100%."""
        cache = ResultCache(tmp_path / "cache")
        ids = ["table7", "table8", "fig5", "table2", "maxvs"]
        cells = plan_grid(ids)
        for cell in cells:
            cache.store(cell.key, _dummy_result(cell))
        farm = SweepFarm(cache, ExplodingExecutor())
        assert farm.run(cells, probe_only=True).n_misses == 0

        gnn = patched_root / "experiments" / "_gnn.py"
        gnn.write_text(gnn.read_text() + "\n# farm-test edit\n")
        stale = farm.run(plan_grid(ids), probe_only=True)
        assert {c.experiment_id for c in stale.misses} == {"table7", "table8"}
        assert {c.experiment_id for c in stale.hits} == {"fig5", "table2", "maxvs"}
        assert 0 < stale.recompute_fraction < 1.0


class TestFarmCli:
    def test_cold_then_warm_via_cli(self, tmp_path, capsys):
        cache_dir, report = tmp_path / "cache", tmp_path / "report.json"
        argv = [
            "farm", "--experiments", "table2", "--cache-dir", str(cache_dir),
            "--report-json", str(report),
        ]
        assert main(argv) == 0
        cold = json.loads(report.read_text())
        assert cold["n_executed"] == 1 and cold["n_hits"] == 0
        assert main(argv) == 0
        warm = json.loads(report.read_text())
        assert warm["n_executed"] == 0 and warm["n_hits"] == 1
        assert warm["recompute_fraction"] == 0.0
        assert "sweep farm" in capsys.readouterr().out

    def test_probe_only_flag(self, tmp_path, capsys):
        assert main([
            "farm", "--experiments", "table2", "--probe-only",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        out = capsys.readouterr().out
        assert "probed 1 cells" in out

    def test_fail_on_drift_exit_code(self, tmp_path, capsys):
        pins = tmp_path / "pins.json"
        pins.write_text(json.dumps({"table2/default/seed0": "0" * 64}))
        argv = [
            "farm", "--experiments", "table2", "--cache-dir",
            str(tmp_path / "cache"), "--pins", str(pins), "--fail-on-drift",
        ]
        assert main(argv) == 1
        assert "drift" in capsys.readouterr().out

    def test_bad_seeds_is_a_cli_error(self, tmp_path, capsys):
        assert main([
            "farm", "--experiments", "table2", "--seeds", "zero",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 1
        assert "--seeds" in capsys.readouterr().err

    def test_farm_warmed_cache_serves_run_command(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["farm", "--experiments", "table2", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["run", "table2", "--cache-dir", cache_dir]) == 0
        assert "[cache hit]" in capsys.readouterr().err

    def test_report_json_is_written_atomically(self, tmp_path, capsys):
        report = tmp_path / "nested" / "report.json"
        assert main([
            "farm", "--experiments", "table2", "--probe-only",
            "--cache-dir", str(tmp_path / "cache"),
            "--report-json", str(report),
        ]) == 0
        assert json.loads(report.read_text())["n_cells"] == 1
        # Same-dir temp + os.replace: no temp litter next to the report.
        assert [p.name for p in report.parent.iterdir()] == ["report.json"]

    def test_unknown_farm_device_fails_before_any_cell(self, tmp_path, capsys):
        assert main([
            "farm", "--experiments", "figS1", "--devices", "v100,nodev",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 1
        err = capsys.readouterr().err
        assert "unknown device name(s) ['nodev']" in err
        assert "registered devices" in err
        assert not (tmp_path / "cache").exists() or not list(
            (tmp_path / "cache").glob("*.json"))


class TestDeviceOverridesValidation:
    def test_unknown_names_raise_configuration_error_listing_registry(self):
        from repro.errors import ConfigurationError
        from repro.gpusim.device import list_devices
        from repro.harness.farm import device_overrides_for

        with pytest.raises(ConfigurationError) as exc:
            device_overrides_for(
                "figS1", "default", ("gh200", "notta", "nodev"), strict=True
            )
        msg = str(exc.value)
        assert "['nodev', 'notta']" in msg
        for name in list_devices():
            assert name in msg

    def test_known_names_still_resolve(self):
        from repro.harness.farm import device_overrides_for

        assert device_overrides_for(
            "figS1", "default", ("v100", "gh200"), strict=True
        ) == {"devices": ("v100", "gh200")}
