"""``cumsum`` kernel with a blocked-scan non-deterministic path.

A GPU prefix sum is a blocked scan: per-block inclusive scans, a scan of
block totals, then an offset add.  Every chunk size defines a different
association order, and the runtime's kernel/occupancy heuristics choose the
chunk at launch time based on transient state — the paper's "optimal
computational kernel at runtime" source of non-determinism.  Our ND path
samples the chunk size per run from a plausible occupancy ladder; the
deterministic path pins the strict serial scan.

The Table 5 entry has ``min(Vermv) = 0``: many hyperparameter settings
round identically under every chunking — this kernel reproduces that, since
small arrays or low-dynamic-range inputs often agree bit-for-bit across
chunk choices.

The batched run-axis engine
---------------------------
:func:`cumsum_runs` repeats the ND path ``R`` times under the engine-wide
RNG contract (one scheduler stream per run, in run order; each stream
contributes exactly one ``integers(len(chunk_ladder))`` draw).  All ``R``
chunk choices are drawn up front, runs are grouped by chunk, and each
distinct chunk's blocked scan is evaluated **once** — the input is shared
by every run, so a chunk group's runs are bitwise copies of one scan.  The
scan itself (:func:`_blocked_cumsum_rows`) is vectorised across rows as a
``(rows, n_chunks, chunk)`` tensor, which also serves the multi-row scalar
:func:`cumsum` path.
"""

from __future__ import annotations

import numpy as np

from .. import backend as _backend
from ..errors import ConfigurationError, ShapeError
from ..runtime import RunContext, get_context
from .registry import resolve_determinism

__all__ = ["cumsum", "cumsum_runs", "blocked_cumsum", "DEFAULT_CHUNK_LADDER"]

#: Chunk sizes the simulated runtime chooses among (occupancy ladder).
DEFAULT_CHUNK_LADDER: tuple[int, ...] = (128, 256, 512, 1024, 2048)


def _blocked_cumsum_rows(rows: np.ndarray, chunk: int) -> np.ndarray:
    """Blocked inclusive scan of every row of a ``(rows, n)`` matrix.

    The batched :func:`blocked_cumsum`: rows are padded to a whole number
    of chunks and scanned as one ``(rows, n_chunks, chunk)`` tensor —
    within-chunk inclusive scans, an exclusive serial scan of chunk totals,
    one offset add — with chunk 0 kept pristine (adding an exact 0 can
    still flip ``-0.0``).  Every operation is a per-row sequential scan or
    an elementwise add, so each output row is bit-identical to the scalar
    :func:`blocked_cumsum` of that row.
    """
    n_rows, n = rows.shape
    if n == 0:
        return rows.copy()
    dtype = rows.dtype if np.issubdtype(rows.dtype, np.floating) else np.float64
    rows = rows.astype(dtype, copy=False)
    impl = _backend.resolve("blocked_cumsum")
    if impl is not None:
        res = impl(rows, chunk)
        if res is not NotImplemented:
            return res
    if chunk >= n:
        return np.add.accumulate(rows, axis=1)
    n_chunks = (n + chunk - 1) // chunk
    buf = np.zeros((n_rows, n_chunks * chunk), dtype=dtype)
    buf[:, :n] = rows
    buf = buf.reshape(n_rows, n_chunks, chunk)
    within = np.add.accumulate(buf, axis=2)
    totals = within[:, :, -1]
    # Exclusive serial scan of chunk totals (the single-block second pass).
    offsets = np.zeros((n_rows, n_chunks), dtype=dtype)
    np.add.accumulate(totals[:, :-1], axis=1, out=offsets[:, 1:])
    out = within + offsets[:, :, None]
    out[:, 0] = within[:, 0]  # keep chunk 0 pristine (-0.0 safe)
    return out.reshape(n_rows, -1)[:, :n]


def blocked_cumsum(x, chunk: int) -> np.ndarray:
    """Inclusive prefix sum with a fixed chunked association order.

    Bit-exact model of a two-level scan: ``chunk``-wide inclusive scans,
    then each chunk's elements receive the serial fold of preceding chunk
    totals (a single add per element — the offset add of the GPU kernel).
    """
    arr = np.asarray(x)
    if arr.ndim != 1:
        raise ShapeError(f"blocked_cumsum expects 1-D input, got shape {arr.shape}")
    if chunk < 1:
        raise ConfigurationError(f"chunk must be >= 1, got {chunk}")
    return _blocked_cumsum_rows(arr[None, :], chunk)[0]


def _as_rows(moved: np.ndarray) -> np.ndarray:
    """Flatten leading axes to a ``(rows, n)`` matrix (robust to ``n = 0``)."""
    lead = int(np.prod(moved.shape[:-1], dtype=np.int64))
    return moved.reshape(lead, moved.shape[-1])


def _validated_moved(x, dim: int) -> np.ndarray:
    arr = np.asarray(x)
    if arr.ndim == 0:
        raise ShapeError("cumsum needs at least one axis")
    if not -arr.ndim <= dim < arr.ndim:
        raise ConfigurationError(f"dim {dim} out of range for {arr.ndim}-D input")
    return np.moveaxis(arr, dim, -1)


def cumsum(
    x,
    dim: int = 0,
    *,
    deterministic: bool | None = None,
    chunk_ladder: tuple[int, ...] = DEFAULT_CHUNK_LADDER,
    ctx: RunContext | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Inclusive prefix sum along ``dim``.

    Deterministic path: strict serial scan (``np.add.accumulate``).
    Non-deterministic path: a chunk size sampled from ``chunk_ladder``
    decides the association order for this run.
    """
    arr = np.asarray(x)
    moved = _validated_moved(arr, dim)
    det = resolve_determinism("cumsum", deterministic)
    if det:
        out = np.add.accumulate(
            moved.astype(moved.dtype if np.issubdtype(moved.dtype, np.floating) else np.float64),
            axis=-1,
        )
        return np.moveaxis(out, -1, dim)
    if rng is None:
        rng = (ctx or get_context()).scheduler()
    if not chunk_ladder:
        raise ConfigurationError("chunk_ladder must be non-empty")
    chunk = int(chunk_ladder[int(rng.integers(len(chunk_ladder)))])
    out = _blocked_cumsum_rows(_as_rows(moved), chunk).reshape(moved.shape)
    return np.moveaxis(out, -1, dim)


def cumsum_runs(
    x,
    dim: int = 0,
    n_runs: int = 1,
    *,
    chunk_ladder: tuple[int, ...] = DEFAULT_CHUNK_LADDER,
    ctx: RunContext | None = None,
) -> list[np.ndarray]:
    """``n_runs`` non-deterministic :func:`cumsum` executions.

    The batched run-axis engine for the chunk-ladder sweeps (Table 5): all
    ``n_runs`` chunk choices are drawn up front (one scheduler stream per
    run, in run order — the engine's draw contract), runs are grouped by
    chunk, and each distinct chunk's blocked scan is evaluated once via the
    row-vectorised :func:`_blocked_cumsum_rows`.  Each returned array is
    bit-identical to — and independent of — the corresponding scalar
    ``cumsum(..., deterministic=False)`` call on the same context.
    """
    if n_runs < 0:
        raise ConfigurationError(f"n_runs must be >= 0, got {n_runs}")
    if not chunk_ladder:
        raise ConfigurationError("chunk_ladder must be non-empty")
    moved = _validated_moved(x, dim)
    ctx = ctx or get_context()
    chunks = []
    for _ in range(n_runs):
        rng = ctx.scheduler()
        chunks.append(int(chunk_ladder[int(rng.integers(len(chunk_ladder)))]))
    flat = _as_rows(moved)
    per_chunk: dict[int, np.ndarray] = {}
    for c in dict.fromkeys(chunks):  # first-occurrence order
        per_chunk[c] = np.moveaxis(
            _blocked_cumsum_rows(flat, c).reshape(moved.shape), -1, dim
        )
    return [per_chunk[c].copy() for c in chunks]
