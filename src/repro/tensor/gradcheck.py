"""Numerical gradient checking for the autograd engine.

Central finite differences in float64 against the analytic backward pass.
Checks run with deterministic kernels forced on — comparing a stochastic
backward against finite differences would conflate FPNA variability with
gradient bugs, which is precisely the debugging hazard the paper describes.
"""

from __future__ import annotations

import numpy as np

from ..config import deterministic_mode
from ..errors import AutogradError
from .tensor import Tensor

__all__ = ["gradcheck"]


def gradcheck(
    fn,
    inputs: tuple[Tensor, ...],
    *,
    eps: float = 1e-4,
    atol: float = 1e-3,
    rtol: float = 1e-2,
) -> bool:
    """Verify analytic gradients of ``fn(*inputs) -> scalar Tensor``.

    Parameters
    ----------
    fn:
        Callable producing a scalar tensor.
    inputs:
        Leaf tensors with ``requires_grad=True`` to check.

    Returns
    -------
    bool
        True on success.

    Raises
    ------
    AutogradError
        With the offending input index and max deviation on mismatch.
    """
    inputs = tuple(inputs)
    for i, t in enumerate(inputs):
        if not isinstance(t, Tensor) or not t.requires_grad:
            raise AutogradError(f"input {i} must be a Tensor with requires_grad=True")

    with deterministic_mode():
        out = fn(*inputs)
        if not isinstance(out, Tensor) or out.size != 1:
            raise AutogradError("fn must return a scalar Tensor")
        for t in inputs:
            t.zero_grad()
        out.backward()
        analytic = [None if t.grad is None else t.grad.copy() for t in inputs]

        for i, t in enumerate(inputs):
            a = analytic[i]
            if a is None:
                raise AutogradError(f"no gradient reached input {i}")
            num = np.zeros(t.data.shape, dtype=np.float64)
            flat = t.data.reshape(-1)
            for j in range(flat.size):
                orig = flat[j]
                flat[j] = orig + eps
                f_plus = fn(*inputs).item()
                flat[j] = orig - eps
                f_minus = fn(*inputs).item()
                flat[j] = orig
                num.reshape(-1)[j] = (f_plus - f_minus) / (2 * eps)
            dev = np.abs(a.astype(np.float64) - num)
            tol = atol + rtol * np.abs(num)
            if np.any(dev > tol):
                worst = float(dev.max())
                raise AutogradError(
                    f"gradient mismatch on input {i}: max |analytic - numeric| = "
                    f"{worst:.3e} exceeds tolerance"
                )
    return True
