"""Bench E-T1: regenerate Table 1 (permutation effects on FP64 sums)."""

from repro.experiments import get_experiment

from conftest import run_once


def test_table1_regeneration(benchmark, ctx, scale):
    result = run_once(
        benchmark, get_experiment("table1").run, scale=scale, ctx=ctx
    )
    assert len(result.rows) >= 8
    # Shape: variability exists and grows with n (compare extremes).
    small = max(abs(r["s_nd_minus_s_d"]) for r in result.rows if r["size"] == 100)
    big = max(abs(r["s_nd_minus_s_d"]) for r in result.rows if r["size"] == max(
        rr["size"] for rr in result.rows
    ))
    assert big >= small
