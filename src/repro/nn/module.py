"""Module base class: parameter registration, state dicts, train/eval."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from ..errors import ConfigurationError
from ..tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor registered as a trainable module attribute."""

    def __init__(self, data, dtype=None) -> None:
        super().__init__(data, requires_grad=True, dtype=dtype)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` attributes in
    ``__init__`` and implement :meth:`forward`.  Registration happens via
    ``__setattr__``, mirroring PyTorch.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ---------------------------------------------------------------- params
    def parameters(self) -> Iterator[Parameter]:
        """All trainable parameters (depth-first, registration order)."""
        for _, p in self.named_parameters():
            yield p

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """(name, parameter) pairs with dotted paths."""
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mname, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{mname}.")

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def expand_runs(self, n_runs: int) -> "Module":
        """Tile every parameter with a leading run axis (lockstep runs).

        Each parameter's data becomes the ``(n_runs, *shape)`` stack of
        ``n_runs`` initially identical, independently trainable copies —
        the R-lockstep training mode of the batched run-axis engine, where
        one optimizer step advances every simulated run at once.  Must be
        called before constructing the optimizer (state buffers mirror the
        parameter shapes at construction).
        """
        if n_runs < 1:
            raise ConfigurationError(f"n_runs must be >= 1, got {n_runs}")
        for p in self.parameters():
            if p.runs is not None:
                raise ConfigurationError("parameters already carry a run axis")
            p.data = np.repeat(p.data[None], n_runs, axis=0)
            p.runs = int(n_runs)
            p.grad = None
        return self

    # ----------------------------------------------------------- state dict
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameter arrays, keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays; shapes must match exactly."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        extra = set(state) - set(params)
        if missing or extra:
            raise ConfigurationError(
                f"state dict mismatch: missing={sorted(missing)}, extra={sorted(extra)}"
            )
        for name, arr in state.items():
            p = params[name]
            arr = np.asarray(arr, dtype=p.data.dtype)
            if arr.shape != p.data.shape:
                raise ConfigurationError(
                    f"shape mismatch for {name}: {arr.shape} vs {p.data.shape}"
                )
            p.data = arr.copy()

    def flat_weights(self) -> np.ndarray:
        """All parameters concatenated into one vector — the unit of
        comparison for the paper's model-weight variability metrics.

        Run-batched modules return the ``(R, P)`` per-run weight matrix
        instead; row ``r`` is byte-identical to the flat weights of run
        ``r``'s scalar twin.
        """
        params = list(self.parameters())
        if not params:
            return np.empty(0, dtype=np.float32)
        runs = params[0].runs
        if runs is not None:
            return np.concatenate([p.data.reshape(runs, -1) for p in params], axis=1)
        return np.concatenate([p.data.reshape(-1) for p in params])

    # ----------------------------------------------------------------- mode
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively."""
        object.__setattr__(self, "training", mode)
        for mod in self._modules.values():
            mod.train(mode)
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    # ----------------------------------------------------------------- call
    def forward(self, *args, **kwargs):
        """Compute the module output; subclass responsibility."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
