"""Seeded synthetic load: arrival policies + an HTTP traffic driver.

The service's behaviour under traffic must be a pinned trajectory, not a
guess — so the load is **reproducible**: arrival times and request
choices derive from seeded generators, and only the measured wall-clock
varies run to run.

Arrival processes follow the pluggable-policy shape the collective layer
established (:class:`repro.gpusim.collectives.ArrivalPolicy` orders
message arrivals per combine; this module's :class:`ArrivalPolicy`
schedules request arrivals per run): an ABC with one method, concrete
policies drawing from their own seeded stream.

* :class:`ConstantRateArrival` — homogeneous Poisson traffic: i.i.d.
  exponential gaps at a fixed rate.
* :class:`PiecewiseConstantNHPP` — a nonhomogeneous Poisson process with
  a piecewise-constant rate function (the classic open/peak/close
  daypart shape), sampled by **thinning** (Lewis & Shedler): candidate
  arrivals at the envelope rate ``lambda_max``, each accepted with
  probability ``lambda(t) / lambda_max``.  Exact for piecewise-constant
  rates, and the acceptance stream is part of the seeded draw sequence,
  so the whole schedule replays bit-identically per seed.

:class:`LoadGenerator` fires the schedule against a live daemon (one
``POST /jobs?wait=1`` per arrival, stdlib ``urllib`` on worker threads)
and reports throughput, p50/p99 latency, hit rate and backpressure
rejections as a :class:`LoadReport` — the numbers ``BENCH_0009.json``
pins.
"""

from __future__ import annotations

import abc
import json
import math
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

from ...errors import ConfigurationError

__all__ = [
    "ArrivalPolicy",
    "ConstantRateArrival",
    "PiecewiseConstantNHPP",
    "LoadGenerator",
    "LoadReport",
]


class ArrivalPolicy(abc.ABC):
    """When does the next request arrive?

    Implementations are seeded and stateful: repeated
    :meth:`next_arrival_time` calls walk one reproducible schedule.
    Build a fresh policy (same seed) to replay it.
    """

    @abc.abstractmethod
    def next_arrival_time(self, current_time: float) -> float:
        """Absolute time (seconds from schedule start) of the next
        arrival after ``current_time``; ``math.inf`` when the process
        has no further arrivals."""

    def arrival_times(self, horizon_s: float) -> list[float]:
        """The full schedule on ``[0, horizon_s)``."""
        if horizon_s <= 0:
            raise ConfigurationError(f"horizon must be > 0, got {horizon_s}")
        times: list[float] = []
        t = 0.0
        while True:
            t = self.next_arrival_time(t)
            if t >= horizon_s:
                return times
            times.append(t)


class ConstantRateArrival(ArrivalPolicy):
    """Homogeneous Poisson arrivals at ``rate_hz`` requests/second."""

    def __init__(self, rate_hz: float, *, seed: int = 0) -> None:
        if rate_hz <= 0:
            raise ConfigurationError(f"rate_hz must be > 0, got {rate_hz}")
        self.rate_hz = float(rate_hz)
        self._rng = random.Random(seed)

    def next_arrival_time(self, current_time: float) -> float:
        return current_time + self._rng.expovariate(self.rate_hz)


class PiecewiseConstantNHPP(ArrivalPolicy):
    """NHPP with a piecewise-constant rate, sampled by thinning.

    ``segments`` is a sequence of ``(start_s, end_s, rate_hz)`` triples;
    the rate is 0 outside every segment (including after the last one, so
    the process ends there).  Candidate arrivals are drawn at the
    envelope rate ``max(rate_hz)`` and accepted with probability
    ``rate(t) / envelope`` — the standard thinning construction, exact
    for piecewise-constant intensities.
    """

    def __init__(
        self, segments: list[tuple[float, float, float]], *, seed: int = 0
    ) -> None:
        if not segments:
            raise ConfigurationError("PiecewiseConstantNHPP needs >= 1 segment")
        clean = []
        for i, seg in enumerate(segments):
            try:
                start, end, rate = (float(v) for v in seg)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"segment {i} must be (start_s, end_s, rate_hz), got {seg!r}"
                ) from None
            if end <= start:
                raise ConfigurationError(
                    f"segment {i}: end {end} must exceed start {start}"
                )
            if rate < 0:
                raise ConfigurationError(f"segment {i}: rate {rate} must be >= 0")
            clean.append((start, end, rate))
        self.segments = sorted(clean)
        self.envelope_hz = max(rate for _, _, rate in self.segments)
        if self.envelope_hz <= 0:
            raise ConfigurationError("at least one segment needs a positive rate")
        self._end = max(end for _, end, _ in self.segments)
        self._rng = random.Random(seed)

    def rate_at(self, t: float) -> float:
        """The intensity function: the rate of the segment covering ``t``."""
        for start, end, rate in self.segments:
            if start <= t < end:
                return rate
        return 0.0

    def next_arrival_time(self, current_time: float) -> float:
        t = current_time
        while True:
            t += self._rng.expovariate(self.envelope_hz)
            if t >= self._end:
                return math.inf
            # Thinning: accept this candidate with probability
            # rate(t)/envelope.  The rejected draws stay in the seeded
            # sequence, so the schedule is a pure function of the seed.
            if self._rng.random() * self.envelope_hz <= self.rate_at(t):
                return t


@dataclass
class LoadReport:
    """Outcome of one generated load run against a live service."""

    n_scheduled: int
    n_ok: int
    n_rejected: int  # 429 backpressure + 503 draining
    n_failed: int
    duration_s: float
    latencies_s: list[float] = field(default_factory=list)
    n_cached: int = 0

    @property
    def throughput_rps(self) -> float:
        return self.n_ok / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        return self.n_cached / self.n_ok if self.n_ok else 0.0

    def percentile_ms(self, q: float) -> float:
        lat = sorted(self.latencies_s)
        if not lat:
            return 0.0
        pos = q * (len(lat) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(lat) - 1)
        return (lat[lo] + (lat[hi] - lat[lo]) * (pos - lo)) * 1e3

    def as_dict(self) -> dict:
        return {
            "n_scheduled": self.n_scheduled,
            "n_ok": self.n_ok,
            "n_rejected": self.n_rejected,
            "n_failed": self.n_failed,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "hit_rate": self.hit_rate,
            "p50_ms": self.percentile_ms(0.50),
            "p99_ms": self.percentile_ms(0.99),
        }


class LoadGenerator:
    """Drive a seeded request schedule against a live daemon.

    Parameters
    ----------
    base_url:
        The service root, e.g. ``http://127.0.0.1:8752``.
    policy:
        The :class:`ArrivalPolicy` producing the schedule.
    jobs:
        Job documents (``POST /jobs`` bodies) the traffic draws from;
        each arrival picks one via the seeded request stream, so the
        request mix replays per seed just like the arrival times.
    seed:
        Seed of the request-choice stream (independent of the policy's).
    timeout_s:
        Per-request HTTP timeout.
    """

    def __init__(
        self,
        base_url: str,
        policy: ArrivalPolicy,
        jobs: list[dict],
        *,
        seed: int = 0,
        timeout_s: float = 60.0,
    ) -> None:
        if not jobs:
            raise ConfigurationError("LoadGenerator needs >= 1 job document")
        self.base_url = base_url.rstrip("/")
        self.policy = policy
        self.jobs = [dict(j) for j in jobs]
        self._rng = random.Random(seed)
        self.timeout_s = timeout_s

    def _fire(self, body: dict, report: LoadReport, lock: threading.Lock) -> None:
        payload = json.dumps(body).encode()
        req = urllib.request.Request(
            f"{self.base_url}/jobs?wait=1",
            data=payload,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        t0 = time.perf_counter()
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                doc = json.loads(resp.read().decode())
            latency = time.perf_counter() - t0
            with lock:
                if doc.get("status") == "done":
                    report.n_ok += 1
                    report.latencies_s.append(latency)
                    if doc.get("outcome", {}).get("cached"):
                        report.n_cached += 1
                else:
                    report.n_failed += 1
        except urllib.error.HTTPError as exc:
            with lock:
                if exc.code in (429, 503):
                    report.n_rejected += 1
                else:
                    report.n_failed += 1
        except (urllib.error.URLError, TimeoutError, ConnectionError, OSError):
            with lock:
                report.n_failed += 1

    def run(self, horizon_s: float) -> LoadReport:
        """Fire the schedule in real time; block until every request
        resolved; return the consolidated report."""
        schedule = self.policy.arrival_times(horizon_s)
        bodies = [
            self.jobs[self._rng.randrange(len(self.jobs))] for _ in schedule
        ]
        report = LoadReport(
            n_scheduled=len(schedule), n_ok=0, n_rejected=0, n_failed=0,
            duration_s=0.0,
        )
        lock = threading.Lock()
        threads: list[threading.Thread] = []
        start = time.perf_counter()
        for at, body in zip(schedule, bodies):
            delay = at - (time.perf_counter() - start)
            if delay > 0:
                time.sleep(delay)
            thread = threading.Thread(
                target=self._fire, args=(body, report, lock), daemon=True
            )
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(timeout=self.timeout_s)
        report.duration_s = time.perf_counter() - start
        return report
