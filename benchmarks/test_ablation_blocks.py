"""Ablation 3: kernel-parameter (block size / count) sensitivity of Vs.

The paper fixes Nt = 64, Nb = 7813 for Fig 1.  This ablation sweeps the
block size and shows (a) every deterministic strategy stays bitwise stable
per configuration while its *value* changes across configurations (each
blocking is a different association), and (b) SPA's Vs spread shrinks as
blocks get bigger (fewer partials to permute).
"""

import numpy as np

from repro.experiments._sumdist import sample_array, spa_vs_samples
from repro.reductions import get_reduction
from repro.runtime import RunContext

from conftest import run_once


def test_block_size_sensitivity(benchmark, ctx):
    def ablate():
        data = RunContext(0).data(3)
        x = sample_array(data, 100_000, "uniform")
        # The association-sensitivity probe uses normal data: cancellation
        # makes rounding differences across blockings near-certain.
        x_assoc = sample_array(data, 100_000, "normal")
        spreads = {}
        det_values = {}
        for tpb in (32, 64, 256):
            vs = spa_vs_samples(x, 150, RunContext(0), threads_per_block=tpb)
            spreads[tpb] = float(np.std(vs))
            impl = get_reduction("sptr", threads_per_block=tpb)
            det_values[tpb] = impl.sum(x_assoc)
        return spreads, det_values

    spreads, det_values = run_once(benchmark, ablate)
    # Fewer partials (bigger blocks) -> smaller permutation space -> less spread.
    assert spreads[256] < spreads[32]
    # Different blockings are different (deterministic) associations.
    assert len(set(det_values.values())) > 1
