"""Benchmark fixtures.

Every benchmark regenerates one paper artifact at reduced scale and asserts
its qualitative shape, while pytest-benchmark reports the wall-clock of the
regeneration itself.  Heavy experiments use ``benchmark.pedantic`` with one
round; micro-kernels use the auto-calibrated mode.

Set ``REPRO_BENCH_SCALE=paper`` to run the published parameter sets (slow).
"""

from __future__ import annotations

import os

import pytest

from repro.runtime import RunContext


@pytest.fixture()
def ctx() -> RunContext:
    """Fixed-seed context so benchmark numbers are comparable run to run."""
    return RunContext(seed=0)


@pytest.fixture()
def scale() -> str:
    """Experiment scale for the benchmark session."""
    return os.environ.get("REPRO_BENCH_SCALE", "default")


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive callable with a single measured round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
