"""Backend selection and per-primitive dispatch.

The engine's hot paths — the fold primitives named in
:mod:`repro.backend.csrc` — each ask the registry for a compiled
implementation at call time::

    impl = registry.resolve("permuted_sums")
    if impl is not None:
        res = impl(arr, pm)
        if res is not NotImplemented:
            return res
    # ... NumPy path ...

``resolve`` returns ``None`` when the NumPy engine should run (mode
``numpy``, or ``auto`` with no toolchain) and the compiled wrapper
otherwise; the wrapper itself may still return ``NotImplemented`` for
inputs outside the compiled envelope (exotic dtypes), dropping that one
call back onto NumPy.  Either way the bits are identical — the backends
differ in wall-clock only, a contract enforced by the cross-backend
parity suite (``tests/test_backend.py``) and by running the full
batched↔scalar property tests and golden pins under both backends.

Selection
---------
``REPRO_BACKEND`` ∈ ``{numpy, compiled, auto}`` (default ``auto``), read
once on first use; :func:`set_backend` overrides it process-wide (the CLI
``--backend`` flag and the sharded executor's worker initializer go
through it), and :func:`use_backend` scopes an override.  ``auto`` uses
the compiled kernels when the toolchain builds them and falls back to
NumPy silently otherwise; explicit ``compiled`` raises
:class:`~repro.errors.ConfigurationError` when the toolchain is
unavailable — a CI leg pinned to the compiled backend must never silently
test NumPy twice.
"""

from __future__ import annotations

import contextlib
import os
from typing import Callable, Iterator

from ..errors import ConfigurationError

__all__ = [
    "BACKEND_ENV",
    "MODES",
    "backend_mode",
    "set_backend",
    "use_backend",
    "active_backend",
    "resolve",
    "compiled_available",
    "availability_error",
    "cache_identity",
    "warm_up",
]

#: Environment variable selecting the backend mode.
BACKEND_ENV = "REPRO_BACKEND"

#: Valid backend modes.
MODES = ("numpy", "compiled", "auto")

_mode: str | None = None  # None => read BACKEND_ENV lazily
_resolved: dict[str, Callable | None] = {}


def _validated(mode: str) -> str:
    m = str(mode).strip().lower()
    if m not in MODES:
        raise ConfigurationError(
            f"unknown backend {mode!r}; choose from {MODES} "
            f"(via ${BACKEND_ENV} or set_backend)"
        )
    return m


def backend_mode() -> str:
    """The *selected* mode: ``numpy``, ``compiled`` or ``auto``.

    Read from ``$REPRO_BACKEND`` on first use (default ``auto``); after
    that, only :func:`set_backend` changes it.
    """
    global _mode
    if _mode is None:
        _mode = _validated(os.environ.get(BACKEND_ENV) or "auto")
    return _mode


def set_backend(mode: str) -> str:
    """Select the backend process-wide; returns the normalised mode.

    Clears the per-primitive resolution cache so the next hot-path call
    re-dispatches under the new mode.
    """
    global _mode
    _mode = _validated(mode)
    _resolved.clear()
    return _mode


@contextlib.contextmanager
def use_backend(mode: str) -> Iterator[str]:
    """Scoped :func:`set_backend` (restores the previous selection)."""
    prev = backend_mode()
    try:
        yield set_backend(mode)
    finally:
        set_backend(prev)


def compiled_available() -> bool:
    """True iff the compiled kernel library loads on this machine."""
    from . import compiled

    return compiled.available()


def availability_error() -> str | None:
    """Why the compiled backend is unavailable (``None`` when it is)."""
    from . import compiled

    return compiled.availability_error()


def active_backend() -> str:
    """The *resolved* backend this process executes with: ``numpy`` or
    ``compiled``.

    ``auto`` resolves to ``compiled`` when the toolchain is available and
    to ``numpy`` otherwise; explicit ``compiled`` raises
    :class:`~repro.errors.ConfigurationError` when it is not.
    """
    mode = backend_mode()
    if mode == "numpy":
        return "numpy"
    if compiled_available():
        return "compiled"
    if mode == "compiled":
        raise ConfigurationError(
            f"{BACKEND_ENV}=compiled but the compiled backend is "
            f"unavailable: {availability_error()}"
        )
    return "numpy"


def resolve(name: str) -> Callable | None:
    """Compiled implementation of primitive ``name``, or ``None`` for the
    NumPy engine.  Cached per name until :func:`set_backend`."""
    try:
        return _resolved[name]
    except KeyError:
        pass
    impl = None
    if active_backend() == "compiled":
        from . import compiled

        impl = compiled.IMPLS.get(name)
    _resolved[name] = impl
    return impl


def cache_identity() -> dict:
    """Backend identity for result-cache keys.

    ``{"name": "numpy"}`` or ``{"name": "compiled", "kernels":
    <source fingerprint>}`` — so a numpy-produced cache entry can never be
    served to a compiled run (or vice versa), and a kernel-source edit
    invalidates every compiled key.  Key hygiene, not a correctness
    dependency: the backends produce identical bits.
    """
    if active_backend() == "compiled":
        from . import compiled

        return {"name": "compiled", "kernels": compiled.KERNEL_FINGERPRINT}
    return {"name": "numpy"}


def warm_up() -> str:
    """Build, load and first-touch every compiled kernel; returns the
    resolved backend name.

    Benchmarks call this before their measured rounds so one-time costs
    (the ``cc`` build, ``dlopen``, first-call paging) never pollute a
    mean; it is a no-op when the NumPy engine is active.
    """
    backend = active_backend()
    if backend != "compiled":
        return backend
    import numpy as np

    from ..ops.segmented import SegmentPlan

    from . import compiled

    x = np.array([1.0, 2.0, 3.0])
    perms = np.array([[2, 0, 1]])
    compiled.IMPLS["permuted_sums"](x, perms)
    compiled.IMPLS["batched_tree_fold"](np.array([[1.0, 2.0, 3.0]]))
    compiled.IMPLS["batched_atomic_fold"](x, perms, False)
    compiled.IMPLS["blocked_cumsum"](x[None, :], 2)
    plan = SegmentPlan(np.array([0, 1, 0]), 2)
    compiled.IMPLS["segment_fold"](plan, x, None, None, per_run_vals=False)
    compiled.IMPLS["stratified_refold"](
        seg_start=plan.segment_starts[:1],
        seg_count=plan.counts[:1],
        seg_pad=np.zeros(1, dtype=bool),
        pos_off=np.zeros(1, dtype=np.int64),
        keys=np.array([0.5, 0.25]),
        order=plan.order,
        vals=x,
        init_rows=None,
        run_of_seg=None,
    )
    return backend
