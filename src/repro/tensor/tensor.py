"""The :class:`Tensor` class and its differentiable operations.

Reverse-mode autograd over a dynamically-built DAG: every differentiable
op records its parents and a closure computing parent gradients from the
output gradient.  ``backward()`` runs a topological sort and accumulates.

Determinism note: host-side gradient *accumulation* (a parameter used
twice) is a fixed-order fold here — the paper's variability enters through
the kernels themselves, specifically :func:`repro.ops.index_add` in the
backward pass of :meth:`Tensor.gather_rows` and in forward aggregations.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterator, Sequence

import numpy as np

from .. import ops as _ops
from ..errors import AutogradError, ShapeError

__all__ = ["Tensor", "tensor", "no_grad", "is_grad_enabled"]

_grad_state = threading.local()


def is_grad_enabled() -> bool:
    """Whether autograd graph recording is currently on."""
    return getattr(_grad_state, "enabled", True)


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Disable graph recording in the enclosed block (inference mode)."""
    prev = is_grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = prev


def _as_data(value, dtype=None) -> np.ndarray:
    arr = np.asarray(value)
    if dtype is not None:
        return arr.astype(dtype, copy=False)
    if np.issubdtype(arr.dtype, np.floating):
        return arr.astype(np.float32, copy=False) if arr.dtype == np.float64 else arr
    if np.issubdtype(arr.dtype, np.integer) or arr.dtype == bool:
        return arr.astype(np.float32)
    raise ShapeError(f"unsupported tensor dtype {arr.dtype}")


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with optional gradient tracking.

    Parameters
    ----------
    data:
        Array-like; float64 inputs are narrowed to float32 (the PyTorch
        default dtype, and the precision regime of the paper's Table 5).
    requires_grad:
        Track operations for reverse-mode differentiation.
    dtype:
        Optional explicit dtype (float32/float64).
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_grad_fn", "_op_name")

    def __init__(self, data, requires_grad: bool = False, dtype=None) -> None:
        self.data = _as_data(data, dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents: tuple[Tensor, ...] = ()
        self._grad_fn: Callable[[np.ndarray], Sequence[np.ndarray | None]] | None = None
        self._op_name: str = "leaf"

    # ------------------------------------------------------------- plumbing
    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        grad_fn: Callable[[np.ndarray], Sequence[np.ndarray | None]],
        op_name: str,
    ) -> "Tensor":
        out = cls.__new__(cls)
        out.data = data
        out.grad = None
        track = is_grad_enabled() and any(p.requires_grad for p in parents)
        out.requires_grad = track
        out._parents = parents if track else ()
        out._grad_fn = grad_fn if track else None
        out._op_name = op_name
        return out

    @property
    def shape(self) -> tuple[int, ...]:
        """Array shape."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of axes."""
        return self.data.ndim

    @property
    def dtype(self):
        """NumPy dtype."""
        return self.data.dtype

    @property
    def size(self) -> int:
        """Total element count."""
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Scalar value of a one-element tensor."""
        if self.data.size != 1:
            raise ShapeError(f"item() requires a single element, got {self.shape}")
        return float(self.data.reshape(())[()])

    def detach(self) -> "Tensor":
        """A view sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, threshold=8)}{grad})"

    # ------------------------------------------------------------- backward
    def backward(self, grad=None) -> None:
        """Accumulate gradients of this tensor w.r.t. graph leaves.

        ``grad`` defaults to 1 for scalar tensors; non-scalar roots require
        an explicit output gradient (PyTorch semantics).
        """
        if not self.requires_grad:
            raise AutogradError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise AutogradError("grad must be given for non-scalar backward()")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise AutogradError(f"grad shape {grad.shape} != tensor shape {self.shape}")

        topo: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in seen:
                    stack.append((p, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node._grad_fn is None:
                node.grad = g if node.grad is None else node.grad + g
                continue
            parent_grads = node._grad_fn(g)
            for p, pg in zip(node._parents, parent_grads):
                if pg is None or not p.requires_grad:
                    continue
                pg = np.asarray(pg, dtype=p.data.dtype)
                if id(p) in grads:
                    grads[id(p)] = grads[id(p)] + pg
                else:
                    grads[id(p)] = pg

    # ----------------------------------------------------------- arithmetic
    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(
            np.asarray(other, dtype=self.data.dtype)
        )

    def __add__(self, other) -> "Tensor":
        o = self._coerce(other)
        data = self.data + o.data
        return Tensor._from_op(
            data,
            (self, o),
            lambda g: (_unbroadcast(g, self.shape), _unbroadcast(g, o.shape)),
            "add",
        )

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        o = self._coerce(other)
        data = self.data - o.data
        return Tensor._from_op(
            data,
            (self, o),
            lambda g: (_unbroadcast(g, self.shape), _unbroadcast(-g, o.shape)),
            "sub",
        )

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        o = self._coerce(other)
        data = self.data * o.data
        return Tensor._from_op(
            data,
            (self, o),
            lambda g: (
                _unbroadcast(g * o.data, self.shape),
                _unbroadcast(g * self.data, o.shape),
            ),
            "mul",
        )

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        o = self._coerce(other)
        data = self.data / o.data
        return Tensor._from_op(
            data,
            (self, o),
            lambda g: (
                _unbroadcast(g / o.data, self.shape),
                _unbroadcast(-g * self.data / (o.data * o.data), o.shape),
            ),
            "div",
        )

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return Tensor._from_op(-self.data, (self,), lambda g: (-g,), "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise AutogradError("only scalar exponents are supported")
        data = self.data**exponent
        return Tensor._from_op(
            data,
            (self,),
            lambda g: (g * exponent * self.data ** (exponent - 1),),
            "pow",
        )

    def __matmul__(self, other) -> "Tensor":
        o = self._coerce(other)
        if self.data.ndim < 1 or o.data.ndim < 1:
            raise ShapeError("matmul requires at least 1-D operands")
        data = self.data @ o.data

        def grad_fn(g: np.ndarray):
            a, b = self.data, o.data
            if a.ndim == 2 and b.ndim == 2:
                return (g @ b.T, a.T @ g)
            if a.ndim == 1 and b.ndim == 2:
                return (g @ b.T, np.outer(a, g))
            if a.ndim == 2 and b.ndim == 1:
                return (np.outer(g, b), a.T @ g)
            raise AutogradError(f"matmul backward unsupported for {a.shape} @ {b.shape}")

        return Tensor._from_op(data, (self, o), grad_fn, "matmul")

    # ----------------------------------------------------------- reductions
    def sum(self, dim: int | tuple[int, ...] | None = None, keepdim: bool = False) -> "Tensor":
        """Sum over ``dim`` (all axes when None)."""
        data = self.data.sum(axis=dim, keepdims=keepdim)

        def grad_fn(g: np.ndarray):
            if dim is None:
                return (np.broadcast_to(g, self.shape).astype(self.data.dtype),)
            gg = g
            if not keepdim:
                axes = (dim,) if isinstance(dim, int) else tuple(dim)
                for ax in sorted(a % self.ndim for a in axes):
                    gg = np.expand_dims(gg, ax)
            return (np.broadcast_to(gg, self.shape).astype(self.data.dtype),)

        return Tensor._from_op(np.asarray(data), (self,), grad_fn, "sum")

    def mean(self, dim: int | tuple[int, ...] | None = None, keepdim: bool = False) -> "Tensor":
        """Arithmetic mean over ``dim``."""
        if dim is None:
            count = self.data.size
        else:
            axes = (dim,) if isinstance(dim, int) else tuple(dim)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(dim=dim, keepdim=keepdim) * (1.0 / count)

    # -------------------------------------------------------------- shaping
    def reshape(self, *shape) -> "Tensor":
        """Reshape (view semantics on data)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        src_shape = self.shape
        return Tensor._from_op(
            data, (self,), lambda g: (g.reshape(src_shape),), "reshape"
        )

    def transpose(self) -> "Tensor":
        """2-D transpose."""
        if self.ndim != 2:
            raise ShapeError(f"transpose() supports 2-D tensors, got {self.shape}")
        return Tensor._from_op(self.data.T, (self,), lambda g: (g.T,), "transpose")

    @property
    def T(self) -> "Tensor":
        """Alias for :meth:`transpose`."""
        return self.transpose()

    # ------------------------------------------------------------ nonlinear
    def relu(self) -> "Tensor":
        """Rectified linear unit."""
        mask = self.data > 0
        return Tensor._from_op(
            self.data * mask, (self,), lambda g: (g * mask,), "relu"
        )

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        data = np.exp(self.data)
        return Tensor._from_op(data, (self,), lambda g: (g * data,), "exp")

    def log(self) -> "Tensor":
        """Elementwise natural log."""
        return Tensor._from_op(
            np.log(self.data), (self,), lambda g: (g / self.data,), "log"
        )

    def tanh(self) -> "Tensor":
        """Elementwise tanh."""
        data = np.tanh(self.data)
        return Tensor._from_op(data, (self,), lambda g: (g * (1 - data * data),), "tanh")

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid."""
        data = 1.0 / (1.0 + np.exp(-self.data))
        return Tensor._from_op(data, (self,), lambda g: (g * data * (1 - data),), "sigmoid")

    def log_softmax(self, dim: int = -1) -> "Tensor":
        """Numerically stable log-softmax along ``dim``."""
        x = self.data
        m = x.max(axis=dim, keepdims=True)
        z = x - m
        lse = np.log(np.exp(z).sum(axis=dim, keepdims=True))
        out = z - lse

        def grad_fn(g: np.ndarray):
            soft = np.exp(out)
            return (g - soft * g.sum(axis=dim, keepdims=True),)

        return Tensor._from_op(out, (self,), grad_fn, "log_softmax")

    # -------------------------------------------------------------- indexing
    def gather_rows(self, index) -> "Tensor":
        """Row gather (``index_select`` dim 0).

        **The backward pass is** :func:`repro.ops.index_add` — the paper's
        canonical non-deterministic kernel — so differentiating through a
        gather injects run-to-run variability unless deterministic
        algorithms are enabled.
        """
        idx = np.asarray(index)
        data = _ops.gather_rows(self.data, idx)
        n_rows = self.shape[0]

        def grad_fn(g: np.ndarray):
            zeros = np.zeros_like(self.data)
            return (_ops.index_add(zeros, 0, idx, g),)

        return Tensor._from_op(data, (self,), grad_fn, "gather_rows")

    def index_add(self, index, source: "Tensor") -> "Tensor":
        """Differentiable :func:`repro.ops.index_add` (dim 0).

        Forward non-determinism follows the global switch; the backward
        w.r.t. ``source`` is a deterministic gather.
        """
        src = source if isinstance(source, Tensor) else Tensor(source)
        idx = np.asarray(index)
        data = _ops.index_add(self.data, 0, idx, src.data)

        def grad_fn(g: np.ndarray):
            return (g, _ops.gather_rows(g, idx))

        return Tensor._from_op(data, (self, src), grad_fn, "index_add")

    def __getitem__(self, key) -> "Tensor":
        data = self.data[key]

        def grad_fn(g: np.ndarray):
            full = np.zeros_like(self.data)
            np.add.at(full, key, g)
            return (full,)

        return Tensor._from_op(np.asarray(data), (self,), grad_fn, "getitem")


def tensor(data, requires_grad: bool = False, dtype=None) -> Tensor:
    """Factory mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)
