"""CUDA-style streams: in-order execution and host synchronisation.

The TPRC reduction exploits the stream ordering contract: two kernels (or a
kernel and a D2H copy) enqueued on the same stream execute in submission
order, giving a cheap global synchronisation point.  The model here tracks
submission order, completion, and the implied dependencies so reductions
can assert the contract they rely on — and so tests can verify that
violating it (reading partials before the producing kernel completes) is
caught.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import LaunchError

__all__ = ["Stream", "Event"]

_stream_ids = itertools.count()


@dataclass
class Event:
    """A marker in a stream's work queue (CUDA event analogue)."""

    stream_id: int
    position: int
    completed: bool = False


@dataclass
class Stream:
    """An in-order work queue.

    Work items are opaque callables executed lazily at synchronisation
    points; the ordering contract — item ``k`` never runs before item
    ``k-1`` completes — is structural (a simple FIFO), which is exactly the
    property TPRC's correctness requires.
    """

    stream_id: int = field(default_factory=lambda: next(_stream_ids))
    _queue: list = field(default_factory=list, repr=False)
    _completed: int = 0

    def launch(self, fn, *args, **kwargs):
        """Enqueue a work item; returns its queue position."""
        if not callable(fn):
            raise LaunchError("stream work items must be callable")
        self._queue.append((fn, args, kwargs, [None]))
        return len(self._queue) - 1

    def record_event(self) -> Event:
        """Record an event after the currently enqueued work."""
        return Event(stream_id=self.stream_id, position=len(self._queue))

    def synchronize(self):
        """Run all pending work in submission order; returns results list."""
        results = []
        while self._completed < len(self._queue):
            fn, args, kwargs, cell = self._queue[self._completed]
            cell[0] = fn(*args, **kwargs)
            self._completed += 1
        for fn, args, kwargs, cell in self._queue:
            results.append(cell[0])
        return results

    def wait_event(self, event: Event):
        """Block until the given event's position has completed (drains this
        stream up to that point when the event belongs to it)."""
        if event.stream_id == self.stream_id:
            while self._completed < min(event.position, len(self._queue)):
                fn, args, kwargs, cell = self._queue[self._completed]
                cell[0] = fn(*args, **kwargs)
                self._completed += 1
            event.completed = True
        else:
            # Cross-stream waits degrade to full synchronisation in this
            # single-threaded model.
            event.completed = True

    def result(self, position: int):
        """Return the result of work item ``position`` (must be completed).

        Raises
        ------
        LaunchError
            If the item has not run yet — this is the data race TPRC's
            stream ordering prevents.
        """
        if position >= len(self._queue):
            raise LaunchError(f"no work item at position {position}")
        if position >= self._completed:
            raise LaunchError(
                f"work item {position} has not completed; synchronize() first "
                "(reading it now would be a host-device data race)"
            )
        return self._queue[position][3][0]

    @property
    def pending(self) -> int:
        """Number of enqueued-but-not-executed items."""
        return len(self._queue) - self._completed
