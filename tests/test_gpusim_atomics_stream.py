"""Tests for atomics, retirement counters and streams."""

import numpy as np
import pytest

from repro.errors import LaunchError, SchedulerError
from repro.fp import serial_sum
from repro.gpusim import AtomicAccumulator, Event, RetirementCounter, Stream, atomic_fold


class TestAtomicFold:
    def test_identity_order_is_serial(self, rng):
        x = rng.standard_normal(1000)
        assert atomic_fold(x) == serial_sum(x)

    def test_explicit_order(self, rng):
        x = rng.standard_normal(100)
        perm = rng.permutation(100)
        assert atomic_fold(x, perm) == serial_sum(x[perm])

    def test_order_shape_mismatch_raises(self):
        with pytest.raises(SchedulerError):
            atomic_fold(np.ones(4), np.arange(3))


class TestAtomicAccumulator:
    def test_returns_previous_value(self):
        acc = AtomicAccumulator(10.0)
        assert acc.add(5.0) == 10.0
        assert acc.read() == 15.0

    def test_op_count(self):
        acc = AtomicAccumulator()
        for i in range(7):
            acc.add(float(i))
        assert acc.n_ops == 7

    def test_float32_dtype_rounding(self):
        acc = AtomicAccumulator(0.0, dtype=np.float32)
        acc.add(1.0)
        acc.add(1e-9)  # absorbed at fp32 precision
        assert acc.read() == 1.0

    def test_matches_fold(self, rng):
        x = rng.standard_normal(100)
        acc = AtomicAccumulator()
        for v in x:
            acc.add(v)
        assert acc.read() == atomic_fold(x)


class TestRetirementCounter:
    def test_last_block_detected(self):
        c = RetirementCounter(4)
        results = [c.retire(b) for b in range(4)]
        assert results == [False, False, False, True]
        assert c.last_block == 3

    def test_last_depends_on_order_not_id(self):
        # Whichever block retires last wins - identity is schedule
        # dependent, determinism of the combine is not.
        c = RetirementCounter(3)
        c.retire(2)
        c.retire(0)
        assert c.retire(1) is True
        assert c.last_block == 1

    def test_over_retirement_raises(self):
        c = RetirementCounter(1)
        c.retire(0)
        with pytest.raises(SchedulerError):
            c.retire(0)

    def test_out_of_range_block_raises(self):
        with pytest.raises(SchedulerError):
            RetirementCounter(2).retire(5)

    def test_zero_grid_rejected(self):
        with pytest.raises(SchedulerError):
            RetirementCounter(0)


class TestStream:
    def test_in_order_execution(self):
        log = []
        s = Stream()
        s.launch(lambda: log.append(1))
        s.launch(lambda: log.append(2))
        s.launch(lambda: log.append(3))
        s.synchronize()
        assert log == [1, 2, 3]

    def test_results_available_after_sync(self):
        s = Stream()
        k = s.launch(lambda: 42)
        s.synchronize()
        assert s.result(k) == 42

    def test_reading_before_sync_is_a_race(self):
        s = Stream()
        k = s.launch(lambda: 42)
        with pytest.raises(LaunchError):
            s.result(k)

    def test_pending_count(self):
        s = Stream()
        s.launch(lambda: None)
        s.launch(lambda: None)
        assert s.pending == 2
        s.synchronize()
        assert s.pending == 0

    def test_wait_event_drains_up_to_position(self):
        log = []
        s = Stream()
        s.launch(lambda: log.append("a"))
        ev = s.record_event()
        s.launch(lambda: log.append("b"))
        s.wait_event(ev)
        assert log == ["a"]
        assert ev.completed

    def test_non_callable_rejected(self):
        with pytest.raises(LaunchError):
            Stream().launch(42)

    def test_unknown_position_raises(self):
        s = Stream()
        s.synchronize()
        with pytest.raises(LaunchError):
            s.result(0)

    def test_events_have_stream_identity(self):
        s1, s2 = Stream(), Stream()
        ev = s1.record_event()
        assert isinstance(ev, Event)
        s2.wait_event(ev)  # cross-stream wait degrades gracefully
        assert ev.completed
