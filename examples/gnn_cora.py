#!/usr/bin/env python
"""The paper's Section V experiment, end to end, at your own scale.

Trains N GraphSAGE models from *identical* initial weights on a Cora-like
citation graph, with the aggregation `index_add` as the only source of
non-determinism, then reports:

* weight-variability drift over epochs (Vermv mean/std grow),
* the headline result: every trained model is bitwise unique, yet all
  converge to similar losses,
* the four D/ND training x inference combinations of Table 7,
* test accuracy, to show the models are genuinely learning.

Run:  python examples/gnn_cora.py [--models 8] [--epochs 5]
"""

import argparse

import numpy as np

import repro
from repro.experiments._gnn import run_inference, train_graphsage
from repro.graph import cora_like
from repro.metrics import count_variability, ermv, runs_all_unique
from repro.runtime import RunContext


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--models", type=int, default=8)
    parser.add_argument("--epochs", type=int, default=5)
    parser.add_argument("--nodes", type=int, default=400)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    ctx = RunContext(args.seed)
    ds = cora_like(
        num_nodes=args.nodes,
        num_edges=2 * args.nodes,
        num_features=64,
        num_classes=7,
        ctx=ctx,
    )
    print(f"dataset: {ds.num_nodes} nodes, {ds.graph.num_edges} edges, "
          f"{ds.num_features} features, {ds.num_classes} classes")

    # ---- train the ND population -----------------------------------------
    print(f"\ntraining {args.models} models, identical inits, ND aggregation...")
    runs = [
        train_graphsage(ds, hidden=16, epochs=args.epochs, lr=0.02,
                        deterministic=False, ctx=ctx)
        for _ in range(args.models)
    ]

    # ---- weight drift over epochs ----------------------------------------
    ref = train_graphsage(ds, hidden=16, epochs=args.epochs, lr=0.02,
                          deterministic=True, ctx=ctx)
    print("\nweight Vermv vs deterministic twin, by epoch:")
    for ep in range(args.epochs):
        vals = np.array([ermv(ref.epoch_weights[ep], r.epoch_weights[ep]) for r in runs])
        vals = vals[np.isfinite(vals)]
        print(f"  epoch {ep + 1}: mean {vals.mean():.3e}  std {vals.std():.3e}")

    unique = runs_all_unique([r.weights for r in runs])
    losses = [r.losses[-1] for r in runs]
    print(f"\nall {args.models} weight vectors bitwise unique: {unique}")
    print(f"final losses: min {min(losses):.4f}  max {max(losses):.4f} "
          "(similar convergence despite bit-level divergence)")

    # ---- Table 7: the four combinations ----------------------------------
    ref_logits = run_inference(ref.model, ds, deterministic=True)
    print("\nTable-7-style combinations (vs D-train/D-infer reference):")
    print(f"{'training':>9} {'inference':>10} {'Vermv':>10} {'Vc':>8}")
    for train_mode in ("D", "ND"):
        for infer_mode in ("D", "ND"):
            ermvs, vcs = [], []
            for m in range(min(4, args.models)):
                run = ref if train_mode == "D" else runs[m]
                logits = run_inference(run.model, ds, deterministic=infer_mode == "D")
                ermvs.append(ermv(ref_logits, logits))
                vcs.append(count_variability(ref_logits, logits))
            e = np.array(ermvs)
            e = e[np.isfinite(e)]
            print(f"{train_mode:>9} {infer_mode:>10} "
                  f"{(e.mean() if e.size else 0):>10.2e} {np.mean(vcs):>8.4f}")

    # ---- accuracy sanity --------------------------------------------------
    with repro.deterministic_mode():
        pred = ref_logits.argmax(axis=1)
    test = np.flatnonzero(ds.test_mask)
    acc = float(np.mean(pred[test] == ds.labels[test]))
    print(f"\ntest accuracy of the deterministic model: {acc:.3f} "
          f"(chance = {1 / ds.num_classes:.3f})")


if __name__ == "__main__":
    main()
