"""Tests for nn modules, losses, init and optimizers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import (
    SGD,
    Adam,
    CrossEntropyLoss,
    Linear,
    Module,
    NLLLoss,
    Parameter,
    ReLU,
    Sigmoid,
    Tanh,
    functional as F,
    init,
)
from repro.runtime import RunContext, use_context
from repro.tensor import Tensor


class TestModuleSystem:
    def test_parameter_registration(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(3))
                self.sub = Linear(2, 2)

        m = M()
        names = [n for n, _ in m.named_parameters()]
        assert "w" in names and "sub.weight" in names and "sub.bias" in names

    def test_num_parameters(self):
        lin = Linear(3, 4)
        assert lin.num_parameters() == 3 * 4 + 4

    def test_zero_grad_clears(self):
        lin = Linear(2, 2)
        x = Tensor(np.ones((1, 2)))
        lin(x).sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_state_dict_round_trip(self):
        a = Linear(3, 2)
        b = Linear(3, 2)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_state_dict_key_mismatch_raises(self):
        a = Linear(3, 2)
        state = a.state_dict()
        del state["bias"]
        with pytest.raises(ConfigurationError):
            a.load_state_dict(state)

    def test_state_dict_shape_mismatch_raises(self):
        a = Linear(3, 2)
        state = a.state_dict()
        state["bias"] = np.zeros(5)
        with pytest.raises(ConfigurationError):
            a.load_state_dict(state)

    def test_train_eval_recursive(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.sub = Linear(2, 2)

        m = M().eval()
        assert not m.training and not m.sub.training
        m.train()
        assert m.training and m.sub.training

    def test_flat_weights_concatenates(self):
        lin = Linear(2, 3)
        assert lin.flat_weights().shape == (2 * 3 + 3,)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestInit:
    def test_glorot_bounds(self):
        w = init.glorot_uniform((100, 50), np.random.default_rng(0))
        bound = np.sqrt(6 / 150)
        assert np.all(np.abs(w) <= bound)
        assert w.dtype == np.float32

    def test_kaiming_bounds(self):
        w = init.kaiming_uniform((64, 32), np.random.default_rng(0))
        assert np.all(np.abs(w) <= np.sqrt(6 / 32))

    def test_default_rng_is_run_stable(self):
        with use_context(RunContext(5)):
            a = init.glorot_uniform((4, 4))
            b = init.glorot_uniform((4, 4))
        np.testing.assert_array_equal(a, b)

    def test_uniform_validation(self):
        with pytest.raises(ConfigurationError):
            init.uniform((2,), 1.0, 0.0)

    def test_zeros(self):
        assert np.all(init.zeros((3, 3)) == 0)


class TestLinear:
    def test_forward_shape(self):
        out = Linear(4, 7)(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 7)

    def test_no_bias_variant(self):
        lin = Linear(3, 2, bias=False)
        assert lin.bias is None
        assert lin.num_parameters() == 6

    def test_known_affine_map(self):
        lin = Linear(2, 1)
        lin.weight.data = np.array([[2.0, 3.0]], dtype=np.float32)
        lin.bias.data = np.array([1.0], dtype=np.float32)
        out = lin(Tensor(np.array([[1.0, 1.0]])))
        assert out.numpy()[0, 0] == 6.0

    def test_dimension_validation(self):
        with pytest.raises(ConfigurationError):
            Linear(0, 3)


class TestActivationsLoss:
    def test_activation_modules(self):
        x = Tensor(np.array([-1.0, 1.0]))
        assert np.all(ReLU()(x).numpy() == [0, 1])
        assert np.allclose(Tanh()(x).numpy(), np.tanh([-1, 1]))
        assert np.allclose(Sigmoid()(x).numpy(), 1 / (1 + np.exp([1.0, -1.0])), rtol=1e-6)

    def test_nll_loss_value(self):
        logp = Tensor(np.log(np.array([[0.7, 0.3], [0.4, 0.6]], dtype=np.float32)))
        loss = F.nll_loss(logp, np.array([0, 1]))
        assert loss.item() == pytest.approx(-(np.log(0.7) + np.log(0.6)) / 2, rel=1e-5)

    def test_cross_entropy_equals_logsoftmax_nll(self, rng):
        logits = Tensor(rng.standard_normal((6, 4)).astype(np.float32))
        t = rng.integers(0, 4, 6)
        a = F.cross_entropy(logits, t)
        b = F.nll_loss(logits.log_softmax(dim=-1), t)
        assert a.item() == pytest.approx(b.item(), rel=1e-6)

    def test_loss_modules_wrap_functional(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)).astype(np.float32))
        t = rng.integers(0, 3, 4)
        assert CrossEntropyLoss()(logits, t).item() == pytest.approx(
            F.cross_entropy(logits, t).item()
        )
        logp = logits.log_softmax(dim=-1)
        assert NLLLoss()(logp, t).item() == pytest.approx(F.nll_loss(logp, t).item())

    def test_nll_validation(self):
        with pytest.raises(ConfigurationError):
            F.nll_loss(Tensor(np.zeros((2, 3))), np.array([0, 5]))
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            F.nll_loss(Tensor(np.zeros(3)), np.array([0]))

    def test_dropout_modes(self):
        x = Tensor(np.ones(1000))
        out = F.dropout(x, p=0.5, training=True)
        kept = float(np.mean(out.numpy() > 0))
        assert 0.3 < kept < 0.7
        assert F.dropout(x, p=0.5, training=False) is x
        with pytest.raises(ConfigurationError):
            F.dropout(x, p=1.0)


class TestOptimizers:
    def _quadratic_step(self, opt_cls, **kw):
        p = Parameter(np.array([5.0], dtype=np.float32))
        opt = opt_cls([p], **kw)
        for _ in range(200):
            opt.zero_grad()
            loss = (Tensor(p.data, dtype=np.float32) * 0).sum()  # placeholder
            p.grad = 2 * p.data  # d/dp p^2
            opt.step()
        return float(p.data[0])

    def test_sgd_minimises_quadratic(self):
        assert abs(self._quadratic_step(SGD, lr=0.1)) < 1e-3

    def test_sgd_momentum_minimises(self):
        assert abs(self._quadratic_step(SGD, lr=0.05, momentum=0.9)) < 1e-2

    def test_adam_minimises_quadratic(self):
        assert abs(self._quadratic_step(Adam, lr=0.1)) < 1e-2

    def test_weight_decay_pulls_to_zero(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        for _ in range(50):
            p.grad = np.zeros(1, dtype=np.float32)
            opt.step()
        assert abs(p.data[0]) < 0.1

    def test_none_grad_skipped(self):
        p = Parameter(np.ones(2))
        SGD([p], lr=0.1).step()  # no grad set: no crash, no change
        np.testing.assert_array_equal(p.data, 1.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ConfigurationError):
            SGD([], lr=0.1)

    def test_hyperparameter_validation(self):
        p = [Parameter(np.ones(1))]
        with pytest.raises(ConfigurationError):
            SGD(p, lr=-1)
        with pytest.raises(ConfigurationError):
            SGD(p, lr=0.1, momentum=1.5)
        with pytest.raises(ConfigurationError):
            Adam(p, betas=(1.0, 0.9))

    def test_adam_bias_correction_first_step(self):
        p = Parameter(np.array([0.0], dtype=np.float32))
        opt = Adam([p], lr=0.001)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        # First Adam step is ~lr regardless of gradient scale.
        assert p.data[0] == pytest.approx(-0.001, rel=1e-4)
