"""Global determinism configuration, mirroring PyTorch's API surface.

The paper studies PyTorch's ``torch.use_deterministic_algorithms`` switch and
found its behaviour (and documentation) incomplete.  This module reproduces
the same control surface for our kernels:

* :func:`use_deterministic_algorithms` — require deterministic kernels; ops
  with no deterministic implementation raise
  :class:`~repro.errors.NondeterministicError` (or warn with
  ``warn_only=True``), exactly the failure mode the paper hit with
  ``scatter_reduce``.
* :func:`are_deterministic_algorithms_enabled` /
  :func:`is_deterministic_algorithms_warn_only_enabled` — introspection.
* :class:`deterministic_mode` — scoped override for tests and experiments.

Thread-safety: flags are process-global and guarded by a lock, like
PyTorch's.  Scoped overrides restore the previous state on exit even when an
exception propagates.
"""

from __future__ import annotations

import contextlib
import threading
import warnings
from typing import Iterator

from .errors import ConfigurationError, NondeterministicError

__all__ = [
    "use_deterministic_algorithms",
    "are_deterministic_algorithms_enabled",
    "is_deterministic_algorithms_warn_only_enabled",
    "deterministic_mode",
    "DeterminismWarning",
    "check_deterministic_allowed",
]


class DeterminismWarning(UserWarning):
    """Warning emitted in ``warn_only`` mode when a non-deterministic kernel
    runs while deterministic algorithms were requested."""


_lock = threading.Lock()
_deterministic: bool = False
_warn_only: bool = False


def use_deterministic_algorithms(mode: bool, *, warn_only: bool = False) -> None:
    """Globally require (or stop requiring) deterministic kernels.

    Parameters
    ----------
    mode:
        ``True`` to require deterministic implementations.
    warn_only:
        If ``True``, operations without a deterministic implementation emit
        :class:`DeterminismWarning` instead of raising.

    Raises
    ------
    ConfigurationError
        If ``mode`` is not a bool (PyTorch raises ``TypeError`` here; we
        raise our library error which *is* a ``TypeError`` subclass for the
        dtype case but a plain ReproError here, so we accept both styles).
    """
    global _deterministic, _warn_only
    if not isinstance(mode, bool):
        raise ConfigurationError(f"mode must be bool, got {type(mode).__name__}")
    if not isinstance(warn_only, bool):
        raise ConfigurationError(f"warn_only must be bool, got {type(warn_only).__name__}")
    with _lock:
        _deterministic = mode
        _warn_only = warn_only if mode else False


def are_deterministic_algorithms_enabled() -> bool:
    """Return ``True`` when deterministic kernels are globally required."""
    with _lock:
        return _deterministic


def is_deterministic_algorithms_warn_only_enabled() -> bool:
    """Return ``True`` when determinism violations only warn."""
    with _lock:
        return _warn_only


@contextlib.contextmanager
def deterministic_mode(mode: bool = True, *, warn_only: bool = False) -> Iterator[None]:
    """Scoped version of :func:`use_deterministic_algorithms`.

    >>> with deterministic_mode():
    ...     assert are_deterministic_algorithms_enabled()
    """
    with _lock:
        prev = (_deterministic, _warn_only)
    use_deterministic_algorithms(mode, warn_only=warn_only)
    try:
        yield
    finally:
        use_deterministic_algorithms(prev[0], warn_only=prev[1])


def check_deterministic_allowed(op_name: str, *, has_deterministic: bool) -> bool:
    """Gatekeeper used by every kernel with a non-deterministic fast path.

    Returns ``True`` when the caller must take the deterministic path.

    * If deterministic algorithms are not required → returns ``False``.
    * If required and the op has a deterministic implementation → ``True``.
    * If required and the op has **no** deterministic implementation →
      raises :class:`NondeterministicError` (or warns in warn-only mode and
      returns ``False``).
    """
    with _lock:
        det, warn = _deterministic, _warn_only
    if not det:
        return False
    if has_deterministic:
        return True
    if warn:
        warnings.warn(
            f"{op_name} does not have a deterministic implementation; "
            "running the non-deterministic kernel (warn_only=True)",
            DeterminismWarning,
            stacklevel=3,
        )
        return False
    raise NondeterministicError(
        f"{op_name} does not have a deterministic implementation, but "
        "deterministic algorithms were required. You can call "
        "repro.use_deterministic_algorithms(True, warn_only=True) to run it anyway."
    )
