"""Tests for the Max|Vs| power-law fit (paper SIII-C)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics import fit_power_law


class TestFitPowerLaw:
    def test_exact_power_law_recovered(self):
        x = np.array([1e2, 1e3, 1e4, 1e5])
        y = 3.0 * x**0.5
        fit = fit_power_law(x, y)
        assert fit.alpha == pytest.approx(0.5, abs=1e-9)
        assert fit.beta == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_sqrt_n_growth_like_paper(self):
        # The paper: Max|Vs| ~ sqrt(n) for uniform inputs.
        rng = np.random.default_rng(0)
        x = np.logspace(2, 6, 12)
        y = 1e-16 * np.sqrt(x) * np.exp(rng.normal(0, 0.05, x.size))
        fit = fit_power_law(x, y)
        assert 0.4 < fit.alpha < 0.6
        assert fit.r_squared > 0.95

    def test_predict_round_trip(self):
        fit = fit_power_law([1, 10, 100], [2, 20, 200])
        np.testing.assert_allclose(fit.predict([1000]), [2000], rtol=1e-9)

    def test_nonpositive_points_dropped(self):
        fit = fit_power_law([1, 10, 100, 1000], [2, 20, 0, 2000])
        assert fit.n_points == 3
        assert fit.alpha == pytest.approx(1.0, abs=1e-9)

    def test_too_few_points_raise(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0], [2.0])

    def test_all_invalid_raise(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([0, -1], [1, 1])

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1, 2, 3], [1, 2])

    def test_constant_y_gives_zero_alpha(self):
        fit = fit_power_law([1, 10, 100], [5.0, 5.0, 5.0])
        assert fit.alpha == pytest.approx(0.0, abs=1e-12)
        assert fit.beta == pytest.approx(5.0, rel=1e-9)
