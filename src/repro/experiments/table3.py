"""Table 3 — OpenMP normal vs ordered reductions on CPU.

Ten trials of the same sum under (a) a plain ``reduction(+:sum)`` — thread
partials combined in completion order, so trailing digits wobble — and (b)
the ``ordered`` construct — a strict serial fold, identical every trial.

The paper's data sums to ~2.35e-07; we use a similar workload (many small
positive FP32-magnitude terms accumulated in FP64) so the wobble appears in
the same digit positions.
"""

from __future__ import annotations

import numpy as np

from ..openmp import OpenMPRuntime
from ..runtime import RunContext
from .base import ShardAxis, ShardableExperiment, register
from .sharding import RunConcat

__all__ = ["Table3OpenMP"]


class Table3OpenMP(ShardableExperiment):
    """Regenerates Table 3 (normal vs ordered OpenMP reductions)."""

    experiment_id = "table3"
    title = "Table 3: normal and ordered reductions using OpenMP on CPU"
    shardable_axes = (ShardAxis("n_trials"),)

    def params_for(self, scale: str) -> dict:
        if scale == "paper":
            return {"n_elements": 1_000_000, "n_trials": 10, "num_threads": 64}
        return {"n_elements": 100_000, "n_trials": 10, "num_threads": 32}

    def shard_run(self, ctx: RunContext, params: dict, lo: int, hi: int) -> dict:
        rng = ctx.data(stream=3)
        # Small positive terms around 2.35e-12 so the total lands near the
        # paper's 2.35e-07 magnitude.
        x = rng.uniform(1.0, 4.0, params["n_elements"]) * 2.35e-07 / params["n_elements"]
        rt = OpenMPRuntime(num_threads=params["num_threads"], ctx=ctx)
        # Batched run-axis engine: the static-schedule thread partials are
        # folded once and only the per-trial combine orders are sampled —
        # bit-identical to looping reduce_sum per trial.  Trial t consumes
        # the t-th stream after the context's current ladder position, so
        # the shard's window is streams [base + lo, base + hi); the
        # ordered fold draws nothing and is trial-invariant.
        ctx.seek_runs(ctx.peek_run_counter() + lo)
        normal = rt.reduce_many(x, hi - lo, ordered=False) if hi > lo else np.empty(0)
        ordered = rt.reduce_many(x, hi - lo, ordered=True) if hi > lo else np.empty(0)
        return {"normal": RunConcat(normal), "ordered": RunConcat(ordered)}

    def finalize(self, ctx: RunContext, params: dict, payload: dict):
        normal, ordered = payload["normal"], payload["ordered"]
        # Full 17-significant-digit strings: the variability lives in the
        # last couple of digits, exactly like the paper's Table 3.
        rows = [
            {
                "trial": i + 1,
                "normal_reduction": f"{n:.16e}",
                "ordered_reduction": f"{o:.16e}",
            }
            for i, (n, o) in enumerate(zip(normal, ordered))
        ]
        n_unique_normal = len(set(normal.tolist()))
        n_unique_ordered = len(set(ordered.tolist()))
        notes = (
            f"normal reduction produced {n_unique_normal} distinct values over "
            f"{params['n_trials']} trials; ordered produced {n_unique_ordered} "
            "(paper: ordered is bitwise stable, normal varies in trailing digits)."
        )
        return rows, notes, {"n_unique_normal": n_unique_normal, "n_unique_ordered": n_unique_ordered}


register(Table3OpenMP())
