"""Figure 4 — count variability Vc vs reduction ratio.

Fixed workloads: ``scatter_reduce`` (sum and mean) on 2 000-element 1-D
arrays; ``index_add`` on 100x100 arrays.  Paper shape: scatter_reduce is
roughly flat (0.005-0.01) below R = 1 with a jump (~0.10) at R = 1;
index_add rises approximately linearly with R.
"""

from __future__ import annotations

from ..runtime import RunContext
from .axes import AxisSpec
from .base import ShardableExperiment, register
from ._opruns import SweepCell, sweep_run_payloads, variability_from_payload

__all__ = ["Fig4VcVsRatio"]


class Fig4VcVsRatio(ShardableExperiment):
    """Regenerates Fig 4 (Vc vs R for scatter_reduce and index_add).

    Axis declaration: (cell x run) with the computed (ratio x op) cell
    grid; the sweep kernel manages the per-cell ladder, so the
    declaration drives shard windows and merge tags only.
    """

    experiment_id = "fig4"
    title = "Fig 4: count variability vs reduction ratio"
    axes = (
        AxisSpec("cell", "config"),
        AxisSpec("run", "run", param="n_runs", shardable=True),
    )

    def axis_values(self, spec, params):
        if spec.name == "cell":
            return tuple(self._cells(params))
        return super().axis_values(spec, params)

    def params_for(self, scale: str) -> dict:
        if scale == "paper":
            return {
                "ratios": tuple(round(0.1 * i, 1) for i in range(1, 11)),
                "sr_dim": 2_000, "ia_dim": 100, "n_runs": 1_000,
            }
        return {
            "ratios": (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
            "sr_dim": 2_000, "ia_dim": 100, "n_runs": 40,
        }

    def _cells(self, params: dict) -> list[SweepCell]:
        return [
            SweepCell(*spec)
            for r in params["ratios"]
            for spec in (
                ("scatter_reduce", params["sr_dim"], r, "sum"),
                ("scatter_reduce", params["sr_dim"], r, "mean"),
                ("index_add", params["ia_dim"], r),
            )
        ]

    def shard_run(self, ctx: RunContext, params: dict, lo: int, hi: int) -> dict:
        # Configuration-axis batching: the ratio sweep's cells (sum, mean,
        # index_add per ratio — the scalar loop's order) go through one
        # windowed sweep pass with plans built up front.
        return {
            "cells": sweep_run_payloads(
                self._cells(params), params["n_runs"], ctx, lo=lo, hi=hi
            )
        }

    def finalize(self, ctx: RunContext, params: dict, payload: dict):
        results = [variability_from_payload(p) for p in payload["cells"]]
        rows: list[dict] = []
        for i, r in enumerate(params["ratios"]):
            sr_sum, sr_mean, ia = results[3 * i : 3 * i + 3]
            rows.append(
                {
                    "R": r,
                    "scatter_reduce_sum_vc": sr_sum.vc_mean,
                    "scatter_reduce_sum_vc_std": sr_sum.vc_std,
                    "scatter_reduce_mean_vc": sr_mean.vc_mean,
                    "scatter_reduce_mean_vc_std": sr_mean.vc_std,
                    "index_add_vc": ia.vc_mean,
                    "index_add_vc_std": ia.vc_std,
                }
            )
        notes = (
            "Shape checks: scatter_reduce Vc roughly flat below R=1 and "
            "jumping at R=1; index_add Vc rising ~linearly with R."
        )
        return rows, notes, {}


register(Fig4VcVsRatio())
