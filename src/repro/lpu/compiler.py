"""Static compiler: op graph → cycle-exact schedule.

The compiler performs dependency-respecting list scheduling onto the four
functional units (MXM/VXM/SXM/MEM).  Because the schedule is a pure
function of the program, the reported cycle count — and the execution
order — is identical on every run: this is the "runtime reported as a
fixed number" property of the paper's Table 6/8 LPU columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CompileError
from .device import CYCLE_COSTS, LPU_CLOCK_GHZ, UNITS, op_cycle_cost

__all__ = ["OpNode", "Program", "ScheduledOp", "CompiledProgram", "LPUCompiler"]


@dataclass(frozen=True)
class OpNode:
    """One operation in an LPU program.

    Attributes
    ----------
    name:
        Unique node id within the program.
    kind:
        Cost-model kind (key of :data:`repro.lpu.device.CYCLE_COSTS`).
    deps:
        Names of producer nodes this op consumes.
    n_elements:
        Element count driving the per-element cycle term.
    flops:
        Floating-point operation count (matmul term).
    fn:
        Optional callable ``fn(env) -> value`` executed by the runtime
        (``env`` maps node names to computed values); cost-only programs
        omit it.
    """

    name: str
    kind: str
    deps: tuple[str, ...] = ()
    n_elements: int = 0
    flops: int = 0
    fn: object = None


@dataclass
class Program:
    """An ordered collection of :class:`OpNode` forming a DAG."""

    nodes: list[OpNode] = field(default_factory=list)

    def add(self, node: OpNode) -> OpNode:
        """Append a node; names must be unique and deps already present."""
        names = {n.name for n in self.nodes}
        if node.name in names:
            raise CompileError(f"duplicate node name {node.name!r}")
        for d in node.deps:
            if d not in names:
                raise CompileError(f"node {node.name!r} depends on unknown {d!r}")
        if node.kind not in CYCLE_COSTS:
            raise CompileError(f"unknown op kind {node.kind!r}")
        self.nodes.append(node)
        return node

    def op(self, name: str, kind: str, deps=(), *, n_elements: int = 0, flops: int = 0, fn=None) -> OpNode:
        """Convenience builder."""
        return self.add(
            OpNode(name=name, kind=kind, deps=tuple(deps), n_elements=n_elements, flops=flops, fn=fn)
        )


@dataclass(frozen=True)
class ScheduledOp:
    """A node with its assigned unit and cycle window."""

    node: OpNode
    unit: str
    start_cycle: float
    end_cycle: float


@dataclass(frozen=True)
class CompiledProgram:
    """The static schedule: ops, unit assignments, total cycles."""

    schedule: tuple[ScheduledOp, ...]
    total_cycles: float
    clock_ghz: float = LPU_CLOCK_GHZ

    @property
    def runtime_us(self) -> float:
        """Deterministic wall-clock prediction, microseconds."""
        return self.total_cycles / (self.clock_ghz * 1e3)

    def unit_utilisation(self) -> dict[str, float]:
        """Busy fraction per functional unit."""
        busy = {u: 0.0 for u in UNITS}
        for s in self.schedule:
            busy[s.unit] += s.end_cycle - s.start_cycle
        total = max(self.total_cycles, 1e-12)
        return {u: b / total for u, b in busy.items()}


class LPUCompiler:
    """Dependency-respecting list scheduler over the functional units."""

    def compile(self, program: Program) -> CompiledProgram:
        """Produce the static schedule for ``program``.

        Ops issue in program order (the input order is the tie-break, so
        compilation is deterministic); each starts at the max of its unit's
        free cycle and its producers' end cycles.
        """
        if not program.nodes:
            raise CompileError("cannot compile an empty program")
        unit_free = {u: 0.0 for u in UNITS}
        end_of: dict[str, float] = {}
        scheduled: list[ScheduledOp] = []
        for node in program.nodes:
            unit = CYCLE_COSTS[node.kind]["unit"]
            ready = max((end_of[d] for d in node.deps), default=0.0)
            start = max(ready, unit_free[unit])
            dur = op_cycle_cost(node.kind, n_elements=node.n_elements, flops=node.flops)
            end = start + dur
            unit_free[unit] = end
            end_of[node.name] = end
            scheduled.append(ScheduledOp(node=node, unit=unit, start_cycle=start, end_cycle=end))
        total = max(s.end_cycle for s in scheduled)
        return CompiledProgram(schedule=tuple(scheduled), total_cycles=total)
