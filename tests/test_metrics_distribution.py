"""Tests for PDF estimation, KL divergence and normality reports (SIII-C)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics import estimate_pdf, kl_divergence, kl_to_normal, normality_report


class TestEstimatePdf:
    def test_density_integrates_to_one(self, rng):
        centers, density = estimate_pdf(rng.standard_normal(5000), bins=51)
        width = centers[1] - centers[0]
        assert float(np.sum(density) * width) == pytest.approx(1.0, rel=1e-6)

    def test_centers_are_monotone(self, rng):
        centers, _ = estimate_pdf(rng.standard_normal(100), bins=11)
        assert np.all(np.diff(centers) > 0)

    def test_explicit_range(self, rng):
        centers, _ = estimate_pdf(rng.standard_normal(100), bins=10, range_=(-1, 1))
        assert centers[0] > -1 and centers[-1] < 1

    def test_nonfinite_samples_dropped(self):
        centers, density = estimate_pdf([1.0, 2.0, np.inf, np.nan], bins=2)
        assert np.all(np.isfinite(density))

    def test_empty_sample_raises(self):
        with pytest.raises(ConfigurationError):
            estimate_pdf([np.nan], bins=5)

    def test_too_few_bins_raise(self):
        with pytest.raises(ConfigurationError):
            estimate_pdf([1.0, 2.0], bins=1)


class TestKlDivergence:
    def test_identical_distributions_zero(self):
        p = np.array([0.2, 0.3, 0.5])
        assert kl_divergence(p, p.copy()) == pytest.approx(0.0, abs=1e-12)

    def test_positive_for_different(self):
        assert kl_divergence([0.9, 0.1], [0.5, 0.5]) > 0

    def test_renormalises_inputs(self):
        assert kl_divergence([2.0, 2.0], [5.0, 5.0]) == pytest.approx(0.0, abs=1e-12)

    def test_zero_q_bins_floored(self):
        val = kl_divergence([0.5, 0.5], [1.0, 0.0])
        assert np.isfinite(val) and val > 0

    def test_grid_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            kl_divergence([0.5, 0.5], [1.0, 0.0, 0.0])

    def test_zero_mass_p_raises(self):
        with pytest.raises(ConfigurationError):
            kl_divergence([0.0, 0.0], [0.5, 0.5])


class TestKlToNormal:
    def test_gaussian_sample_has_small_kl(self):
        x = np.random.default_rng(0).standard_normal(20000)
        assert kl_to_normal(x, bins=41) < 0.05

    def test_bimodal_sample_has_large_kl(self):
        r = np.random.default_rng(0)
        x = np.concatenate([r.normal(-5, 0.1, 5000), r.normal(5, 0.1, 5000)])
        assert kl_to_normal(x, bins=41) > 0.3

    def test_degenerate_sample_is_inf(self):
        assert kl_to_normal(np.ones(100)) == np.inf

    def test_too_small_sample_raises(self):
        with pytest.raises(ConfigurationError):
            kl_to_normal([1.0, 2.0])


class TestNormalityReport:
    def test_gaussian_verdict(self):
        x = np.random.default_rng(1).standard_normal(10000)
        rep = normality_report(x, bins=41)
        assert rep.is_normal_kl
        assert abs(rep.skewness) < 0.1 and abs(rep.excess_kurtosis) < 0.2
        assert rep.n == 10000

    def test_discrete_mixture_fails_kl(self):
        r = np.random.default_rng(2)
        atoms = r.standard_normal(6) * 10
        x = atoms[r.integers(0, 6, 4000)] + r.normal(0, 0.01, 4000)
        rep = normality_report(x, bins=41)
        assert not rep.is_normal_kl

    def test_degenerate_report(self):
        rep = normality_report(np.zeros(100))
        assert rep.kl_normal == np.inf and not rep.is_normal_kl

    def test_threshold_is_configurable(self):
        x = np.random.default_rng(3).standard_normal(5000)
        assert not normality_report(x, kl_threshold=0.0).is_normal_kl
