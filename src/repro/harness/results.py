"""Result persistence: JSON archives and a content-addressed result cache.

Archives (:func:`save_result` / :func:`load_result`) are plain JSON
snapshots of one :class:`~repro.experiments.base.ExperimentResult`; the
filename carries the experiment id, scale **and seed**, so archiving the
same experiment under several seeds never silently overwrites an earlier
run.

The cache (:class:`ResultCache`) is content-addressed: the key is the
SHA-256 of ``(experiment id, scale, seed, parameter overrides, code
fingerprint, backend identity)``, where the code fingerprint is
**module-granular** (:mod:`repro.harness.fingerprint`): it hashes exactly
the modules in the experiment's static import closure
(:func:`~repro.harness.fingerprint.experiment_fingerprint`), so an edit
invalidates precisely the experiments that can reach the edited module —
a ``_gnn.py`` edit misses only the GNN tables' keys while every summation
experiment stays hot.  Results that map onto no registered experiment
fall back to the whole-package hash (:func:`code_fingerprint`).  The
backend identity names the resolved compute backend plus — for the
compiled backend — the kernel-source fingerprint
(:func:`repro.backend.cache_identity`).  Experiments are pure functions of
that tuple — results are replayable from the master seed — so a cache hit
is bit-exactly the result a recompute would produce, and any source change
an experiment could observe invalidates its keys.  Backends produce
identical bits, but key hygiene must not depend on that: a numpy-produced
entry is never served to a compiled run (or vice versa), and a
kernel-source edit invalidates every compiled key.  Corrupted
or mismatched entries are treated as misses (with a warning), never as
errors.

Each entry leads with a compact ``cache`` metadata block (identity,
fingerprints, closure module hashes, payload digest, elapsed seconds) so
the sweep farm (:mod:`repro.harness.farm`) can probe hit/miss state and
detect digest drift (:meth:`ResultCache.contains` /
:meth:`ResultCache.read_meta`) without deserialising result payloads.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
import warnings
from datetime import datetime, timezone
from pathlib import Path

from ..errors import ConfigurationError, ExperimentError
from ..experiments.base import ExperimentResult
from . import fingerprint as _fingerprint

__all__ = [
    "save_result",
    "load_result",
    "code_fingerprint",
    "experiment_fingerprint",
    "result_digest",
    "cache_key",
    "ResultCache",
]

#: Re-export: the module-granular fingerprint the cache keys on.
experiment_fingerprint = _fingerprint.experiment_fingerprint


def _result_from_dict(data: dict, origin) -> ExperimentResult:
    try:
        return ExperimentResult(
            experiment_id=data["experiment_id"],
            title=data["title"],
            scale=data["scale"],
            params=data["params"],
            rows=data["rows"],
            notes=data.get("notes", ""),
            elapsed_s=data.get("elapsed_s", 0.0),
            extra=data.get("extra", {}),
            seed=data.get("seed"),
            meta=data.get("meta", {}),
        )
    except KeyError as exc:
        raise ExperimentError(f"malformed result file {origin}: missing {exc}") from exc


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (same-directory temp file +
    ``os.replace``).

    A bare ``path.write_text`` truncates before writing, so a crash — or a
    concurrent reader in a multi-process ``run-all --workers`` pool sharing
    one directory — can observe a half-written file.  ``os.replace`` is
    atomic on POSIX and Windows within one filesystem, so readers only ever
    see the old complete file or the new complete file.
    """
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - already replaced/removed
            pass
        raise


def save_result(result: ExperimentResult, directory: str | Path) -> Path:
    """Archive ``result`` as JSON in ``directory``; returns the path.

    The filename is ``<id>_<scale>_seed<seed>.json`` (``<id>_<scale>.json``
    for legacy results that carry no seed), so archives of different seeds
    coexist instead of silently overwriting each other.  The write is
    atomic (:func:`_atomic_write_text`).
    """
    d = Path(directory)
    d.mkdir(parents=True, exist_ok=True)
    stem = f"{result.experiment_id}_{result.scale}"
    if result.seed is not None:
        stem += f"_seed{result.seed}"
    path = d / f"{stem}.json"
    _atomic_write_text(path, json.dumps(result.as_dict(), indent=2, default=str))
    return path


def load_result(path: str | Path) -> ExperimentResult:
    """Load a previously saved result (round-trips seed/meta fields)."""
    p = Path(path)
    if not p.exists():
        raise ExperimentError(f"no result file at {p}")
    data = json.loads(p.read_text())
    return _result_from_dict(data, p)


# --------------------------------------------------------------------- cache


def code_fingerprint() -> str:
    """SHA-256 over every ``*.py`` source file of the ``repro`` package.

    The coarse staleness guard: any source edit — down to a docstring —
    changes this fingerprint.  Since the farm PR it is only the
    *fallback* key material, for results that map onto no registered
    experiment; experiment invocations key on the module-granular
    :func:`experiment_fingerprint` instead.  Per-module hashes are
    memoized per process and invalidated by ``(path, mtime_ns, size)``
    (:mod:`repro.harness.fingerprint`), so repeated calls cost ``stat``
    syscalls, not re-reads.
    """
    return _fingerprint.package_fingerprint()


def _fingerprint_for(experiment_id: str) -> str:
    """Module-granular fingerprint for ``experiment_id``, falling back to
    the whole-package hash for ids outside the experiment registry."""
    try:
        return _fingerprint.experiment_fingerprint(experiment_id)
    except (ExperimentError, ConfigurationError):
        return code_fingerprint()


def result_digest(result: ExperimentResult) -> str:
    """Canonical SHA-256 of a result's scientific payload.

    Hashes exactly the ``{rows, extra}`` serialisation the golden-pin
    suite (``tests/test_golden_experiments.py``) hashes, so farm drift
    digests and golden pins live in one digest space.  Stable across a
    JSON round-trip (floats serialise shortest-round-trip), so a cached
    result and the run that produced it share one digest.
    """
    blob = json.dumps(
        {"rows": result.rows, "extra": result.extra},
        sort_keys=True, separators=(",", ":"), default=str,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def _canonical_override(value, path: str):
    """Map one override value onto the canonical JSON-value domain.

    ``json.dumps(..., default=str)`` silently stringified anything
    non-JSON, so distinct values could collide into one key
    (``np.float64(2)`` vs the string ``"2.0"``) or produce repr-dependent
    keys (a ``DeviceSpec``'s dataclass repr).  Canonicalization is
    strict instead: booleans, ints, floats, strings and ``None`` pass
    through (NumPy scalars collapse onto their Python equivalents, so
    ``np.float64(2.0)`` and ``2.0`` share a key — they resolve to the
    same experiment parameters), sequences become lists, mappings must
    have string keys, and anything else raises
    :class:`~repro.errors.ConfigurationError` naming the offending entry.
    """
    import numpy as np

    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, (list, tuple, np.ndarray)):
        if isinstance(value, np.ndarray) and value.ndim == 0:
            return _canonical_override(value[()], path)
        return [
            _canonical_override(v, f"{path}[{i}]") for i, v in enumerate(value)
        ]
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise ConfigurationError(
                    f"cache_key override {path}: mapping keys must be str, "
                    f"got {type(k).__name__}"
                )
            out[k] = _canonical_override(v, f"{path}[{k!r}]")
        return out
    raise ConfigurationError(
        f"cache_key override {path}: cannot canonicalize "
        f"{type(value).__name__} values (use ints/floats/str/bool/None, "
        "sequences or str-keyed mappings)"
    )


def cache_key(
    experiment_id: str,
    scale: str,
    seed: int,
    overrides: dict | None = None,
    *,
    fingerprint: str | None = None,
) -> str:
    """Content address of one experiment invocation.

    Override values are canonicalized (:func:`_canonical_override`) so
    equal parameter sets share one key regardless of spelling (tuple vs
    list, NumPy scalar vs Python scalar) and non-serialisable values fail
    loudly instead of keying on their repr.

    The default ``fingerprint`` is the **experiment's own**
    (:func:`experiment_fingerprint` over its static import closure) —
    keys of experiments that cannot observe an edit survive it.  Pass
    ``fingerprint`` explicitly to pin a key to a specific code state
    (tests; the farm's previous-generation probes).
    """
    from .. import backend as _backend

    doc = {
        "experiment_id": experiment_id,
        "scale": scale,
        "seed": int(seed),
        "overrides": {
            k: _canonical_override(v, k) for k, v in (overrides or {}).items()
        },
        "code_fingerprint": fingerprint or _fingerprint_for(experiment_id),
        "backend": _backend.cache_identity(),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Content-addressed store of experiment results under one directory.

    Entries are ``<key>.json`` documents holding the result plus a
    ``cache`` metadata block (key, seed, fingerprint, creation time).
    Lookups verify the stored key; corrupted, truncated or mismatched
    entries degrade to a miss with a :class:`UserWarning` so a damaged
    cache can never poison results — the caller simply recomputes.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self._gc_done = False

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    #: Initial read when probing an entry's leading ``cache`` metadata
    #: block.  Metadata (including a full closure-module hash map)
    #: usually stays well under this; when it doesn't, the probe grows
    #: the read geometrically until the block decodes — a fixed bound
    #: here used to turn oversized-metadata entries into permanent
    #: misses that the farm kept re-dispatching.
    _META_PROBE_BYTES = 262_144

    def read_meta(self, key: str) -> dict | None:
        """The ``cache`` metadata block for ``key`` — without the payload.

        Reads :attr:`_META_PROBE_BYTES` from the head of the entry (the
        metadata block is serialised first) and decodes just the embedded
        ``"cache"`` object; if the block is truncated at the window edge,
        the read grows geometrically (never JSON-parsing the payload as a
        whole) until the object decodes or the file ends.  A head window
        with no ``"cache"`` marker at all is provably not a well-formed
        entry — the payload starts after the metadata block — so the
        probe stops without scanning further.  Returns ``None`` for
        missing, corrupted or key-mismatched entries — the probe never
        warns, because the caller's next step (a full :meth:`lookup`, or
        a recompute) handles the miss.
        """
        path = self.path_for(key)
        try:
            with open(path, "r") as fh:
                head = fh.read(self._META_PROBE_BYTES)
                if '"cache"' not in head:
                    return None
                meta = self._decode_meta(head)
                while meta is None:
                    chunk = fh.read(3 * len(head))
                    if not chunk:
                        break
                    head += chunk
                    meta = self._decode_meta(head)
        except OSError:
            return None
        if not isinstance(meta, dict) or meta.get("key") != key:
            return None
        return meta

    @staticmethod
    def _decode_meta(head: str) -> dict | None:
        """Decode the leading ``"cache": {...}`` object from an entry head."""
        marker = head.find('"cache"')
        if marker < 0:
            return None
        start = head.find("{", marker)
        if start < 0:
            return None
        try:
            meta, _ = json.JSONDecoder().raw_decode(head, start)
        except ValueError:
            return None
        return meta if isinstance(meta, dict) else None

    def contains(self, key: str) -> bool:
        """Metadata-only hit probe: ``True`` iff a well-formed entry for
        ``key`` exists.  The farm probes thousands of grid cells through
        this before touching a worker; like :meth:`lookup`, a positive
        probe refreshes the entry's mtime so probed-hot entries survive
        the age GC.
        """
        if self.read_meta(key) is None:
            return False
        try:
            self.path_for(key).touch()
        except OSError:  # pragma: no cover - read-only cache
            pass
        return True

    def iter_meta(self):
        """Yield the metadata block of every key-shaped entry.

        The farm's previous-generation scan: one pass over the directory,
        reading only metadata heads, never payloads.  Malformed entries
        are skipped silently (they degrade to lookup-time misses).
        """
        try:
            entries = sorted(self.directory.glob("*.json"))
        except OSError:  # pragma: no cover - vanished directory
            return
        for path in entries:
            stem = path.stem
            if len(stem) != 64 or any(c not in "0123456789abcdef" for c in stem):
                continue
            meta = self.read_meta(stem)
            if meta is not None:
                yield meta

    def lookup(self, key: str) -> ExperimentResult | None:
        """Return the cached result for ``key``, or ``None`` on a miss.

        An entry that vanishes between a :meth:`contains` probe and the
        payload read here (age GC, a concurrent process pruning the
        directory) is a **clean** miss — no warning, no
        ``FileNotFoundError`` — so callers racing the filesystem (a
        daemon under traffic, two farm processes sharing a cache) simply
        recompute.  Only entries that *exist but cannot be served*
        (corruption, key mismatch) warn.
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None  # deleted since the probe: a clean miss
        except OSError:
            return None  # unreadable (permissions, transient IO): miss
        try:
            data = json.loads(text)
            if data["cache"]["key"] != key:
                raise ValueError("cache key mismatch")
            result = _result_from_dict(data["result"], path)
        except (ValueError, KeyError, TypeError, ExperimentError) as exc:
            warnings.warn(
                f"corrupted result-cache entry {path} ({exc}); recomputing",
                UserWarning,
                stacklevel=2,
            )
            return None
        try:
            path.touch()  # refresh mtime: hits keep an entry alive past the GC
        except OSError:  # pragma: no cover - read-only cache
            pass
        result.meta = dict(result.meta, cache_key=key)
        return result

    #: Entries untouched for this long are garbage-collected on store.
    max_age_days: float = 30.0

    def _gc_old_entries(self) -> None:
        """Age-bound the cache directory (runs once per instance).

        Keys embed the code fingerprint, so entries of edited code are
        unreachable until that exact source state returns — but it *can*
        return (branch switches, reverts), so staleness is judged by age,
        not fingerprint: key-shaped entries not stored for
        ``max_age_days`` are dropped.  Lookups refresh an entry's mtime,
        keeping actively used results alive.  mtime-only (no JSON parse),
        and at most one directory scan per :class:`ResultCache` instance,
        so ``run-all`` pays it once.

        ``.<name>.*.tmp`` files are :func:`_atomic_write_text` temps; a
        writer that crashed between ``mkstemp`` and ``os.replace`` leaks
        one, and nothing else ever references it, so old temps are
        collected on the same cutoff (a live writer's temp is seconds
        old and untouched).
        """
        if self._gc_done:
            return
        self._gc_done = True
        cutoff = time.time() - self.max_age_days * 86400.0
        for path in self.directory.glob("*.json"):
            if len(path.stem) != 64 or any(c not in "0123456789abcdef" for c in path.stem):
                continue
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
            except OSError:  # pragma: no cover - concurrent gc
                pass
        for path in self.directory.glob(".*.tmp"):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
            except OSError:  # pragma: no cover - concurrent gc
                pass

    def store(
        self, key: str, result: ExperimentResult, *, overrides: dict | None = None
    ) -> Path:
        """Write ``result`` under ``key``; age-GCs the directory once per
        instance (:meth:`_gc_old_entries`); returns the entry path.

        The entry's leading metadata block records the full cell identity
        (id, scale, seed, canonical ``overrides``), both fingerprints,
        the closure's per-module hashes, the payload digest and the
        elapsed wall-clock — everything the farm needs for hit probes,
        previous-generation drift comparison (which modules moved, did
        the bits move) and cost-ordered scheduling, all without parsing
        a single payload.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        self._gc_old_entries()
        try:
            exp_fp = _fingerprint.experiment_fingerprint(result.experiment_id)
            modules = _fingerprint.closure_hashes(result.experiment_id)
        except (ExperimentError, ConfigurationError):
            exp_fp, modules = None, None  # unregistered id: coarse key only
        entry = {
            "cache": {
                "key": key,
                "experiment_id": result.experiment_id,
                "scale": result.scale,
                "seed": result.seed,
                "overrides": {
                    k: _canonical_override(v, k)
                    for k, v in (overrides or {}).items()
                },
                "code_fingerprint": code_fingerprint(),
                "experiment_fingerprint": exp_fp,
                "digest": result_digest(result),
                "elapsed_s": result.elapsed_s,
                "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
                "modules": modules,
            },
            "result": result.as_dict(),
        }
        path = self.path_for(key)
        # Atomic: concurrent run-all --workers pools share one cache
        # directory, and a reader racing a bare write_text would degrade
        # to a spurious corruption warning + recompute.
        _atomic_write_text(path, json.dumps(entry, indent=2, default=str))
        return path
