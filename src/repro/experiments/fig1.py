"""Figure 1 — probability density of Vs for SPA sums (normal vs uniform).

The paper: 100 arrays of 1M FP64, 10 000 SPA runs each, Vs against SPTR;
the PDFs converge to normal distributions (KL criterion) whose parameters
depend on the input distribution and GPU family.  We regenerate the
histogram series and the normality verdicts.
"""

from __future__ import annotations

import numpy as np

from ..metrics.distribution import estimate_pdf, normality_report
from ..runtime import RunContext
from .base import Experiment, register
from ._sumdist import sample_array, spa_vs_samples_arrays

__all__ = ["Fig1SpaPdf"]


class Fig1SpaPdf(Experiment):
    """Regenerates Fig 1 (SPA Vs PDFs on the V100 model)."""

    experiment_id = "fig1"
    title = "Fig 1: PDF of Vs for SPA sums, normal and uniform inputs (V100)"

    def params_for(self, scale: str) -> dict:
        if scale == "paper":
            return {
                "n_elements": 1_000_000, "n_arrays": 100, "n_runs": 10_000,
                "device": "v100", "threads_per_block": 64, "n_blocks": 7813,
                "bins": 101,
            }
        return {
            "n_elements": 100_000, "n_arrays": 4, "n_runs": 400,
            "device": "v100", "threads_per_block": 64, "n_blocks": None,
            "bins": 21,
        }

    def _run(self, ctx: RunContext, params: dict):
        rows: list[dict] = []
        extra: dict = {}
        for stream, dist in enumerate(("uniform", "normal"), start=21):
            # NB: a fixed stream id per distribution — hash() would be
            # process-randomised and break replayability.
            data_rng = ctx.data(stream=stream)
            xs = np.stack([
                sample_array(data_rng, params["n_elements"], dist)
                for _ in range(params["n_arrays"])
            ])
            # One (arrays, runs, n) pass on the batched engine — the
            # orders are drawn array-major in run order, bit-identical to
            # the per-array loop this replaces.
            vs_mat = spa_vs_samples_arrays(
                xs, params["n_runs"], ctx,
                device=params["device"],
                threads_per_block=params["threads_per_block"],
                n_blocks=params["n_blocks"],
            )
            reports = []
            for a in range(params["n_arrays"]):
                # Normality is assessed per array, matching the paper's "a
                # normal whose mean and standard deviation depend on x_i":
                # pooling arrays would mix different (mu, sigma) and fake a
                # heavy tail.  The KL threshold is bias-corrected for the
                # histogram estimator (E[KL] ~ (bins-1)/(2N) for a true
                # normal sample).
                thresh = 0.08 + (params["bins"] - 1) / params["n_runs"]
                reports.append(
                    normality_report(vs_mat[a], bins=params["bins"], kl_threshold=thresh)
                )
            vs = vs_mat.reshape(-1)
            centers, density = estimate_pdf(vs, bins=4 * params["bins"])
            extra[f"pdf_{dist}"] = {
                "centers_x1e16": (centers * 1e16).tolist(),
                "density": density.tolist(),
            }
            kls = np.array([r.kl_normal for r in reports])
            rows.append(
                {
                    "distribution": dist,
                    "n_samples": int(vs.size),
                    "vs_mean_x1e16": float(np.mean([r.mean for r in reports])) * 1e16,
                    "vs_std_x1e16": float(np.mean([r.std for r in reports])) * 1e16,
                    "median_kl_to_normal": float(np.median(kls)),
                    "frac_arrays_normal_by_kl": float(np.mean([r.is_normal_kl for r in reports])),
                }
            )
        notes = (
            "Paper shape: per-array Vs PDFs approximately normal (low KL); "
            "the fitted (mean, std) depend on the input distribution. "
            "Compare with fig2 where AO is non-normal."
        )
        return rows, notes, extra


register(Fig1SpaPdf())
