"""Build, load and wrap the compiled hot-path kernels.

The backend is **cffi in ABI mode**: the C source in
:mod:`repro.backend.csrc` is compiled once into a content-addressed shared
library (``repro_kernels_<fingerprint>.so`` under
:func:`build_dir`), loaded with ``ffi.dlopen``, and exposed through thin
NumPy-facing wrappers.  ABI mode keeps the build a single ``cc`` subprocess
call — no setuptools, no API-mode extension build — so the toolchain
surface is exactly {cffi importable, a C compiler on ``$PATH``}.

Every failure mode (cffi missing, no compiler, compile error, dlopen
error) degrades to *unavailable* with a recorded reason:
:func:`available` returns ``False`` and the registry falls back to the
NumPy engine (silently under ``REPRO_BACKEND=auto``, loudly under
``REPRO_BACKEND=compiled``).  Import of this module never raises.

Each wrapper validates dtype/contiguity and returns ``NotImplemented``
for inputs outside the compiled envelope (e.g. ``float16``, non-native
byte order), which makes the call sites fall through to their NumPy
paths — per-call graceful degradation, not per-process.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from .csrc import CDEF, CFLAGS, CSRC, KERNEL_FINGERPRINT

__all__ = [
    "available",
    "availability_error",
    "build_dir",
    "load_library",
    "IMPLS",
    "KERNEL_FINGERPRINT",
]

#: Environment variable overriding where the shared library is built.
BUILD_DIR_ENV = "REPRO_BACKEND_BUILD_DIR"

_ffi = None
_lib = None
_error: str | None = None
_tried = False

#: Dtypes the kernels are instantiated for.
_SUFFIX = {np.dtype(np.float64): "f64", np.dtype(np.float32): "f32"}


def build_dir() -> Path:
    """``$REPRO_BACKEND_BUILD_DIR`` or ``~/.cache/repro-backend``."""
    env = os.environ.get(BUILD_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-backend"


def _find_compiler() -> str | None:
    """``$CC`` or the first of ``cc``/``gcc``/``clang`` on ``$PATH``."""
    cc = os.environ.get("CC")
    if cc:
        return cc
    for name in ("cc", "gcc", "clang"):
        found = shutil.which(name)
        if found:
            return found
    return None


def _build_library(so_path: Path) -> None:
    """Compile the kernel source into ``so_path`` (atomic, concurrent-safe).

    Two processes racing the build each compile into a private temp file
    and ``os.replace`` it over the target — dlopen only ever sees a
    complete library.
    """
    cc = _find_compiler()
    if cc is None:
        raise RuntimeError("no C compiler found (set $CC or install cc/gcc/clang)")
    so_path.parent.mkdir(parents=True, exist_ok=True)
    src_path = so_path.with_suffix(".c")
    if not src_path.exists():  # kept next to the .so for debugging
        src_path.write_text(CSRC)
    fd, tmp = tempfile.mkstemp(dir=so_path.parent, prefix=f".{so_path.name}.", suffix=".tmp")
    os.close(fd)
    try:
        proc = subprocess.run(
            [cc, *CFLAGS, "-o", tmp, str(src_path)],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"kernel compilation failed ({cc} exited {proc.returncode}): "
                f"{proc.stderr.strip()[:500]}"
            )
        os.replace(tmp, so_path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_library():
    """Return the loaded kernel library, building it on first use.

    Raises on failure; use :func:`available` for the non-raising probe.
    The result is cached for the process (including a cached failure —
    the toolchain does not come and go mid-run).
    """
    global _ffi, _lib, _error, _tried
    if _lib is not None:
        return _lib
    if _tried and _error is not None:
        raise RuntimeError(_error)
    _tried = True
    try:
        from cffi import FFI

        ffi = FFI()
        ffi.cdef(CDEF)
        so_path = build_dir() / f"repro_kernels_{KERNEL_FINGERPRINT[:16]}.so"
        if not so_path.exists():
            _build_library(so_path)
        lib = ffi.dlopen(str(so_path))
    except Exception as exc:  # noqa: BLE001 - any toolchain failure => unavailable
        _error = f"{type(exc).__name__}: {exc}"
        raise RuntimeError(_error) from exc
    _ffi, _lib = ffi, lib
    return lib


def available() -> bool:
    """True iff the compiled kernels can be (or already were) loaded."""
    try:
        load_library()
    except Exception:
        return False
    return True


def availability_error() -> str | None:
    """Why the compiled backend is unavailable (None when it is)."""
    if available():
        return None
    return _error


def _reset_for_tests() -> None:
    """Forget the cached load attempt (tests simulate missing toolchains)."""
    global _ffi, _lib, _error, _tried
    _ffi = _lib = _error = None
    _tried = False


# ------------------------------------------------------------------ wrappers

def _suffix(dtype: np.dtype) -> str | None:
    """Kernel suffix for ``dtype``, or ``None`` when outside the envelope."""
    if not dtype.isnative:
        return None
    return _SUFFIX.get(dtype)


def _f64p(arr: np.ndarray):
    return _ffi.cast("double *", arr.ctypes.data)


def _f32p(arr: np.ndarray):
    return _ffi.cast("float *", arr.ctypes.data)


def _valp(arr: np.ndarray):
    return _f64p(arr) if arr.dtype == np.float64 else _f32p(arr)


def _i64(arr) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.int64)


def _i64p(arr: np.ndarray):
    return _ffi.cast("int64_t *", arr.ctypes.data)


def _u8p(arr: np.ndarray):
    return _ffi.cast("uint8_t *", arr.ctypes.data)


def _permuted_sums(arr: np.ndarray, pm: np.ndarray):
    """Compiled :func:`repro.fp.summation.permuted_sums` core (validated
    non-empty inputs)."""
    sfx = _suffix(arr.dtype)
    if sfx is None:
        return NotImplemented
    lib = load_library()
    arr = np.ascontiguousarray(arr)
    pm = _i64(pm)
    out = np.empty(pm.shape[0], dtype=np.float64)
    getattr(lib, f"repro_permuted_sums_{sfx}")(
        _valp(arr), _i64p(pm), pm.shape[0], arr.size, _f64p(out)
    )
    return out


def _batched_tree_fold(mat: np.ndarray):
    """Compiled :func:`repro.fp.summation.batched_tree_fold` core
    (``n >= 2`` guaranteed by the call site)."""
    sfx = _suffix(mat.dtype)
    if sfx is None:
        return NotImplemented
    lib = load_library()
    mat = np.ascontiguousarray(mat)
    n_runs, n = mat.shape
    p = 1 << int(n - 1).bit_length()
    scratch = np.empty(p, dtype=mat.dtype)
    out = np.empty(n_runs, dtype=np.float64)
    getattr(lib, f"repro_tree_fold_rows_{sfx}")(
        _valp(mat), n_runs, n, p, _valp(scratch), _f64p(out)
    )
    return out


def _batched_atomic_fold(arr: np.ndarray, om: np.ndarray, per_run: bool):
    """Compiled :func:`repro.gpusim.atomics.batched_atomic_fold` core."""
    sfx = _suffix(arr.dtype)
    if sfx is None:
        return NotImplemented
    lib = load_library()
    arr = np.ascontiguousarray(arr)
    om = _i64(om)
    n_runs, n = om.shape
    out = np.empty(n_runs, dtype=np.float64)
    getattr(lib, f"repro_atomic_fold_{sfx}")(
        _valp(arr), _i64p(om), int(per_run), n_runs, n, _f64p(out)
    )
    return out


def _blocked_cumsum_rows(rows: np.ndarray, chunk: int):
    """Compiled :func:`repro.ops.cumsum._blocked_cumsum_rows` core
    (float rows, ``n >= 1``)."""
    sfx = _suffix(rows.dtype)
    if sfx is None:
        return NotImplemented
    lib = load_library()
    rows = np.ascontiguousarray(rows)
    n_rows, n = rows.shape
    out = np.empty_like(rows)
    getattr(lib, f"repro_blocked_cumsum_{sfx}")(
        _valp(rows), n_rows, n, int(chunk), _valp(out)
    )
    return out


def _segment_fold(plan, vals, orders, init, *, per_run_vals: bool):
    """Shared core of the compiled segmented folds.

    Parameters mirror the :class:`~repro.ops.segmented.SegmentPlan` fold
    family: ``orders`` is ``None`` (canonical order for every run), a
    ``(n_sources,)`` single order (``fold``), or an ``(R, n_sources)``
    matrix (``fold_runs``); ``vals`` is ``(n_sources, *payload)`` shared
    or ``(R, n_sources, *payload)`` per-run.  Payload axes are flattened
    to one contiguous inner dimension.
    """
    sfx = _suffix(vals.dtype)
    if sfx is None:
        return NotImplemented
    lib = load_library()
    vals = np.ascontiguousarray(vals)
    if per_run_vals:
        n_runs = vals.shape[0]
        payload = vals.shape[2:]
    else:
        payload = vals.shape[1:]
        n_runs = 1 if orders is None or orders.ndim == 1 else orders.shape[0]
    m = int(np.prod(payload, dtype=np.int64)) if payload else 1
    if m == 0:
        return NotImplemented  # degenerate payload: let NumPy shape it
    if orders is None:
        orders_ptr = _ffi.NULL
        order = plan.order
    elif orders.ndim == 1:
        orders_ptr = _ffi.NULL
        order = orders
    else:
        orders = _i64(orders)
        orders_ptr = _i64p(orders)
        order = plan.order
    order = _i64(order)
    seg_start = _i64(plan.segment_starts)
    seg_end = _i64(plan.segment_ends)
    if init is not None:
        init = np.ascontiguousarray(init, dtype=vals.dtype)
        init_ptr = _valp(init)
    else:
        init_ptr = _ffi.NULL
    out = np.empty((n_runs, plan.n_targets) + payload, dtype=vals.dtype)
    getattr(lib, f"repro_segment_fold_{sfx}")(
        _valp(vals),
        int(per_run_vals),
        orders_ptr,
        _i64p(order),
        _i64p(seg_start),
        _i64p(seg_end),
        init_ptr,
        n_runs,
        plan.n_sources,
        plan.n_targets,
        m,
        plan.k_max,
        _valp(out),
    )
    return out


def _stratified_refold(
    *,
    seg_start,
    seg_count,
    seg_pad,
    pos_off,
    keys,
    order,
    vals,
    init_rows,
    run_of_seg,
):
    """Compiled :func:`repro.ops.segmented._stratified_refold` core
    (``ufunc=np.add`` only; the call site checks)."""
    sfx = _suffix(vals.dtype)
    if sfx is None:
        return NotImplemented
    lib = load_library()
    vals = np.ascontiguousarray(vals)
    per_run = run_of_seg is not None
    payload = vals.shape[2:] if per_run else vals.shape[1:]
    m = int(np.prod(payload, dtype=np.int64)) if payload else 1
    if m == 0:
        return NotImplemented
    n_sources = vals.shape[1] if per_run else vals.shape[0]
    seg_start = _i64(seg_start)
    seg_count = _i64(seg_count)
    seg_pad_u8 = np.ascontiguousarray(seg_pad, dtype=np.uint8)
    pos_off = _i64(pos_off)
    keys = np.ascontiguousarray(keys, dtype=np.float64)
    order = _i64(order)
    n_segs = seg_count.size
    k_cap = int(seg_count.max()) if n_segs else 0
    lanes = np.empty(max(k_cap, 1), dtype=np.int64)
    if init_rows is not None:
        init_rows = np.ascontiguousarray(init_rows, dtype=vals.dtype)
        init_ptr = _valp(init_rows)
    else:
        init_ptr = _ffi.NULL
    if per_run:
        run_of_seg = _i64(run_of_seg)
        run_ptr = _i64p(run_of_seg)
    else:
        run_ptr = _ffi.NULL
    out = np.empty((n_segs,) + payload, dtype=vals.dtype)
    getattr(lib, f"repro_stratified_refold_{sfx}")(
        _valp(vals),
        int(per_run),
        run_ptr,
        _i64p(seg_start),
        _i64p(seg_count),
        _u8p(seg_pad_u8),
        _i64p(pos_off),
        _f64p(keys),
        _i64p(order),
        init_ptr,
        n_segs,
        n_sources,
        m,
        _i64p(lanes),
        _valp(out),
    )
    return out


#: Primitive name -> compiled implementation, consumed by the registry.
IMPLS = {
    "permuted_sums": _permuted_sums,
    "batched_tree_fold": _batched_tree_fold,
    "batched_atomic_fold": _batched_atomic_fold,
    "blocked_cumsum": _blocked_cumsum_rows,
    "segment_fold": _segment_fold,
    "stratified_refold": _stratified_refold,
}
