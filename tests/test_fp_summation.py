"""Tests for ordered folds and tree reductions (repro.fp.summation)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.fp import (
    block_partials,
    blocked_pairwise_sum,
    exact_sum,
    pairwise_sum,
    permuted_sum,
    reverse_sum,
    serial_sum,
    tree_fold,
)


class TestSerialSum:
    def test_empty(self):
        assert serial_sum([]) == 0.0

    def test_single(self):
        assert serial_sum([3.5]) == 3.5

    def test_matches_python_fold(self, rng):
        x = rng.standard_normal(1000)
        acc = 0.0
        for v in x:
            acc += v
        assert serial_sum(x) == acc

    def test_order_dependence_demonstrated(self):
        # The canonical FPNA example: (a + b) + c != a + (b + c).
        x = np.array([1.0, 1e100, -1e100])
        assert serial_sum(x) == 0.0          # 1.0 absorbed into 1e100
        assert serial_sum(x[::-1]) == 1.0    # cancellation happens first

    def test_2d_input_rejected(self):
        with pytest.raises(ShapeError):
            serial_sum(np.ones((2, 2)))

    def test_integer_input_promoted(self):
        assert serial_sum(np.arange(10)) == 45.0


class TestReverseAndPermuted:
    def test_reverse_equals_serial_of_reversed(self, rng):
        x = rng.standard_normal(257)
        assert reverse_sum(x) == serial_sum(x[::-1])

    def test_identity_permutation_equals_serial(self, rng):
        x = rng.standard_normal(100)
        assert permuted_sum(x, np.arange(100)) == serial_sum(x)

    def test_permutation_usually_changes_bits(self, ctx):
        x = ctx.data().standard_normal(100_000)
        s_d = serial_sum(x)
        deltas = [
            permuted_sum(x, ctx.scheduler().permutation(x.size)) - s_d
            for _ in range(5)
        ]
        assert any(d != 0 for d in deltas)

    def test_permutation_never_changes_exact_value(self, ctx):
        # Sanity: the mathematical sum is permutation invariant; only the
        # rounding differs.  Integers below 2^53 are exact.
        x = np.arange(1000, dtype=np.float64)
        perm = ctx.scheduler().permutation(1000)
        assert permuted_sum(x, perm) == serial_sum(x)

    def test_bad_permutation_shape_raises(self):
        with pytest.raises(ShapeError):
            permuted_sum(np.ones(4), np.arange(3))

    def test_out_of_range_permutation_raises(self):
        with pytest.raises(ConfigurationError):
            permuted_sum(np.ones(3), np.array([0, 1, 7]))


class TestTreeFold:
    def test_empty_and_single(self):
        assert tree_fold([]) == 0.0
        assert tree_fold([2.0]) == 2.0

    def test_power_of_two_exact_structure(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert tree_fold(x) == (1.0 + 3.0) + (2.0 + 4.0)

    def test_padding_is_exact(self, rng):
        # Appending zeros must not change the tree result.
        x = rng.standard_normal(13)
        padded = np.concatenate([x, np.zeros(3)])
        assert tree_fold(x) == tree_fold(padded)

    def test_close_to_exact_sum(self, rng):
        x = rng.standard_normal(10_000)
        assert abs(tree_fold(x) - exact_sum(x)) < 1e-11

    def test_float32_dtype_preserved_in_fold(self, rng):
        x = rng.standard_normal(100).astype(np.float32)
        out = tree_fold(x)
        assert out == np.float32(out) or isinstance(out, float)


class TestPairwiseSum:
    def test_block_one_is_tree(self, rng):
        x = rng.standard_normal(37)
        assert pairwise_sum(x, block=1) == tree_fold(x)

    def test_block_covers_everything_is_serial(self, rng):
        x = rng.standard_normal(57)
        assert pairwise_sum(x, block=57) == serial_sum(x)

    def test_invalid_block_raises(self):
        with pytest.raises(ConfigurationError):
            pairwise_sum(np.ones(4), block=0)


class TestBlockPartials:
    def test_partials_cover_all_data(self, rng):
        x = rng.standard_normal(1000)
        partials = block_partials(x, 8)
        assert partials.shape == (8,)
        assert abs(exact_sum(partials) - exact_sum(x)) < 1e-10

    def test_each_partial_is_block_tree(self, rng):
        x = rng.standard_normal(64)
        partials = block_partials(x, 4, block_size=16)
        for b in range(4):
            assert partials[b] == tree_fold(x[b * 16 : (b + 1) * 16])

    def test_single_block(self, rng):
        x = rng.standard_normal(50)
        assert block_partials(x, 1)[0] == tree_fold(x)

    def test_more_blocks_than_elements(self):
        partials = block_partials(np.ones(3), 8)
        assert partials.shape == (8,)
        assert exact_sum(partials) == 3.0

    def test_undersized_coverage_raises(self):
        with pytest.raises(ConfigurationError):
            block_partials(np.ones(100), 4, block_size=10)

    def test_invalid_n_blocks_raises(self):
        with pytest.raises(ConfigurationError):
            block_partials(np.ones(4), 0)

    def test_blocked_pairwise_sum_deterministic(self, rng):
        x = rng.standard_normal(12345)
        assert blocked_pairwise_sum(x, 16) == blocked_pairwise_sum(x, 16)

    def test_blocked_pairwise_depends_on_blocking(self, rng):
        # Different blockings are different associations - usually
        # different bits.  This is the whole point of the paper.
        x = rng.standard_normal(100_000)
        sums = {blocked_pairwise_sum(x, nb) for nb in (4, 16, 64, 256)}
        assert len(sums) > 1
