"""Sweep, timing, parallel-execution, caching and CLI utilities."""

from .sweep import grid, Sweep
from .timing import time_callable, TimingStats
from .results import (
    save_result,
    load_result,
    code_fingerprint,
    cache_key,
    ResultCache,
)
from .parallel import ShardedExecutor, default_workers

__all__ = [
    "grid",
    "Sweep",
    "time_callable",
    "TimingStats",
    "save_result",
    "load_result",
    "code_fingerprint",
    "cache_key",
    "ResultCache",
    "ShardedExecutor",
    "default_workers",
]
