"""Tests for the op determinism registry and read-only gather ops."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NondeterministicError
from repro.ops import (
    all_op_specs,
    documented_nondeterministic_ops,
    gather_rows,
    op_spec,
    take_along_dim,
)
from repro.ops.registry import resolve_determinism


class TestRegistry:
    def test_table5_rows_present(self):
        # The paper's Table 5 operation set.
        docs = documented_nondeterministic_ops()
        for name in (
            "conv_transpose1d", "conv_transpose2d", "conv_transpose3d",
            "cumsum", "index_add", "index_copy", "index_put",
            "scatter", "scatter_reduce",
        ):
            assert name in docs

    def test_scatter_reduce_documentation_mismatch(self):
        # Documented as supporting determinism, but it does not work -
        # the paper's finding about incomplete documentation.
        spec = op_spec("scatter_reduce")
        assert spec.documented_deterministic_available
        assert not spec.has_deterministic

    def test_gather_is_deterministic(self):
        spec = op_spec("gather")
        assert not spec.documented_nondeterministic and spec.has_deterministic

    def test_unknown_op_raises(self):
        with pytest.raises(ConfigurationError):
            op_spec("fused_rmsnorm")

    def test_all_specs_sorted(self):
        names = [s.name for s in all_op_specs()]
        assert names == sorted(names)

    def test_resolve_explicit_true_without_impl_raises(self):
        with pytest.raises(NondeterministicError):
            resolve_determinism("scatter_reduce", True)

    def test_resolve_explicit_false_always_ok(self):
        assert resolve_determinism("scatter_reduce", False) is False

    def test_resolve_none_defers_to_global(self):
        assert resolve_determinism("index_add", None) is False


class TestGatherRows:
    def test_basic(self, rng):
        x = rng.standard_normal((5, 3))
        out = gather_rows(x, np.array([4, 0, 0]))
        np.testing.assert_array_equal(out, x[[4, 0, 0]])

    def test_always_bitwise_stable(self, rng):
        x = rng.standard_normal((100, 8))
        idx = rng.integers(0, 100, 50)
        assert gather_rows(x, idx).tobytes() == gather_rows(x, idx).tobytes()

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            gather_rows(np.ones((3, 2)), np.array([3]))

    def test_float_index_rejected(self):
        with pytest.raises(ConfigurationError):
            gather_rows(np.ones((3, 2)), np.array([0.0]))

    def test_empty_index(self):
        out = gather_rows(np.ones((3, 2)), np.array([], dtype=np.int64))
        assert out.shape == (0, 2)


class TestTakeAlongDim:
    def test_matches_numpy(self, rng):
        x = rng.standard_normal((4, 5))
        idx = rng.integers(0, 5, (4, 2))
        np.testing.assert_array_equal(
            take_along_dim(x, idx, 1), np.take_along_axis(x, idx, 1)
        )

    def test_bad_dim_rejected(self):
        with pytest.raises(ConfigurationError):
            take_along_dim(np.ones((2, 2)), np.zeros((2, 2), dtype=int), 5)

    def test_float_indices_rejected(self):
        with pytest.raises(ConfigurationError):
            take_along_dim(np.ones((2, 2)), np.zeros((2, 2)), 0)
