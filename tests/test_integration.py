"""End-to-end integration tests across subsystems.

These mirror the paper's narrative arcs: correctness-testing breakage
(SIII), determinism switches on a full model (SV), and the
GPU-vs-deterministic-hardware comparison (SIV/SV).
"""

import numpy as np
import pytest

import repro
from repro.fp import exact_sum
from repro.graph import cora_like
from repro.lpu import LPUExecutor, Program
from repro.nn import Adam, GraphSAGE, functional as F
from repro.ops import index_add
from repro.runtime import RunContext
from repro.tensor import Tensor


class TestCorrectnessTestingScenario:
    """A CP2K-style tolerance test harness confronted with FPNA (SIII)."""

    TOLERANCE = 1e-14  # the paper quotes CP2K energy tolerances this tight

    def test_deterministic_pipeline_passes_threshold_testing(self, ctx):
        x = ctx.data().standard_normal(1_000_000)
        sptr = repro.get_reduction("sptr", threads_per_block=128)
        reference = sptr.sum(x)
        for _ in range(3):
            assert abs(sptr.sum(x) - reference) <= self.TOLERANCE * abs(reference)

    def test_nondeterministic_pipeline_can_fail_threshold_testing(self, ctx):
        x = ctx.data().standard_normal(1_000_000)
        spa = repro.get_reduction("spa", threads_per_block=64)
        reference = spa.sum(x, ctx=ctx)
        deviations = [
            abs(spa.sum(x, ctx=ctx) - reference) for _ in range(20)
        ]
        # Relative deviations overlap the correctness-test tolerance scale.
        rel = max(deviations) / max(abs(reference), 1e-300)
        assert rel > 1e-16  # bit-level motion exists
        assert max(deviations) > 0

    def test_exact_sum_restores_reproducibility(self, ctx):
        x = ctx.data().standard_normal(100_000)
        vals = {exact_sum(ctx.scheduler().permutation(x.size) * 0 + x) for _ in range(3)}
        assert len(vals) == 1


class TestEndToEndGnnPipeline:
    """Train + infer under each determinism mode (paper SV)."""

    @pytest.fixture(scope="class")
    def ds(self):
        return cora_like(num_nodes=150, num_edges=300, num_features=24,
                         num_classes=5, ctx=RunContext(0))

    def _train(self, ds, ctx, deterministic, epochs=3):
        from repro.config import deterministic_mode

        model = GraphSAGE(24, 8, 5, rng=ctx.init(stream=1))
        opt = Adam(model.parameters(), lr=0.01)
        x = Tensor(ds.features)
        idx = np.flatnonzero(ds.train_mask)
        with deterministic_mode(deterministic):
            for _ in range(epochs):
                opt.zero_grad()
                out = model(x, ds.graph.edge_index)
                F.nll_loss(out.gather_rows(idx), ds.labels[idx]).backward()
                opt.step()
        return model

    def test_deterministic_training_is_bitwise_reproducible(self, ds):
        ctx = RunContext(1)
        w1 = self._train(ds, ctx, True).flat_weights()
        w2 = self._train(ds, ctx, True).flat_weights()
        np.testing.assert_array_equal(w1, w2)

    def test_nondeterministic_training_diverges(self, ds):
        ctx = RunContext(1)
        weights = [self._train(ds, ctx, False).flat_weights().tobytes() for _ in range(3)]
        assert len(set(weights)) > 1

    def test_identical_inits_before_divergence(self, ds):
        ctx = RunContext(1)
        m1 = GraphSAGE(24, 8, 5, rng=ctx.init(stream=1))
        m2 = GraphSAGE(24, 8, 5, rng=ctx.init(stream=1))
        np.testing.assert_array_equal(m1.flat_weights(), m2.flat_weights())

    def test_losses_converge_despite_bit_divergence(self, ds):
        # The paper: all 1000 models converge to similar loss values while
        # being bitwise unique.
        ctx = RunContext(1)
        models = [self._train(ds, ctx, False, epochs=5) for _ in range(3)]
        with repro.deterministic_mode():
            losses = []
            x = Tensor(ds.features)
            for m in models:
                out = m(x, ds.graph.edge_index)
                losses.append(F.nll_loss(out, ds.labels).item())
        assert np.ptp(losses) < 0.05


class TestGpuVsLpuComparison:
    def test_same_math_deterministic_on_lpu_variable_on_gpu(self, ctx, rng):
        idx = rng.integers(0, 64, 4096)
        src = rng.standard_normal((4096, 8)).astype(np.float32)
        inp = rng.standard_normal((64, 8)).astype(np.float32)

        from repro.ops.nondet import ContentionModel

        force = ContentionModel(q0=1.0, gamma=0.0, n0=1e-9)
        gpu_outs = {
            index_add(inp, 0, idx, src, model=force, ctx=ctx).tobytes() for _ in range(5)
        }
        assert len(gpu_outs) > 1

        prog = Program()
        prog.op(
            "agg", "index_add", n_elements=src.size,
            fn=lambda env: index_add(inp, 0, idx, src),
        )
        ex = LPUExecutor()
        lpu_outs = {ex.run(prog)[0].tobytes() for _ in range(5)}
        assert len(lpu_outs) == 1

    def test_lpu_runtime_is_a_fixed_number(self):
        prog = Program()
        prog.op("agg", "index_add", n_elements=1_000_000, fn=lambda env: 0)
        ex = LPUExecutor()
        times = {ex.run(prog)[1].runtime_us for _ in range(3)}
        assert len(times) == 1


class TestReproducibilityContract:
    """The library-level promise: everything is replayable from a seed."""

    def test_full_experiment_replay(self):
        from repro.experiments import get_experiment

        a = get_experiment("fig4").run(ctx=RunContext(11), ratios=(0.5,), n_runs=10)
        b = get_experiment("fig4").run(ctx=RunContext(11), ratios=(0.5,), n_runs=10)
        assert a.rows == b.rows

    def test_different_seeds_different_nd_results(self):
        from repro.experiments import get_experiment

        a = get_experiment("fig4").run(ctx=RunContext(1), ratios=(0.5,), n_runs=10)
        b = get_experiment("fig4").run(ctx=RunContext(2), ratios=(0.5,), n_runs=10)
        assert a.rows != b.rows

    def test_deterministic_kernels_seed_independent(self, rng):
        idx = rng.integers(0, 10, 100)
        src = rng.standard_normal((100, 3)).astype(np.float32)
        inp = np.zeros((10, 3), np.float32)
        with repro.use_context(RunContext(1)):
            a = index_add(inp, 0, idx, src, deterministic=True)
        with repro.use_context(RunContext(999)):
            b = index_add(inp, 0, idx, src, deterministic=True)
        np.testing.assert_array_equal(a, b)
