"""Registry of parallel-sum strategies and the Table 2 property table."""

from __future__ import annotations

from ..errors import ConfigurationError
from .base import ReductionImpl, ReductionProperties
from .implementations import (
    AtomicOnly,
    CubStyle,
    SinglePassAtomic,
    SinglePassRecursiveGPU,
    SinglePassTreeReduction,
    TwoPassReduceCPU,
)

__all__ = ["REDUCTION_NAMES", "get_reduction", "all_reductions", "properties_table"]

_CLASSES: dict[str, type[ReductionImpl]] = {
    "ao": AtomicOnly,
    "spa": SinglePassAtomic,
    "sptr": SinglePassTreeReduction,
    "sprg": SinglePassRecursiveGPU,
    "tprc": TwoPassReduceCPU,
    "cu": CubStyle,
}

#: Strategy names in the paper's Table 2 order.
REDUCTION_NAMES: tuple[str, ...] = ("cu", "sptr", "sprg", "tprc", "spa", "ao")


def get_reduction(name: str, device: str = "v100", **kwargs) -> ReductionImpl:
    """Instantiate a strategy by short name on the given device.

    >>> get_reduction("sptr", device="gh200", threads_per_block=512)
    """
    try:
        cls = _CLASSES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown reduction {name!r}; known: {sorted(_CLASSES)}"
        ) from None
    return cls(device, **kwargs)


def all_reductions(device: str = "v100", **kwargs) -> dict[str, ReductionImpl]:
    """Instantiate every strategy on the given device (Table 2 order)."""
    return {name: get_reduction(name, device, **kwargs) for name in REDUCTION_NAMES}


def properties_table() -> list[ReductionProperties]:
    """Static metadata of all strategies — regenerates the paper's Table 2."""
    return [_CLASSES[name].properties for name in REDUCTION_NAMES]
