"""The asyncio HTTP/JSON experiment daemon.

Stdlib only (:func:`asyncio.start_server` + hand-rolled HTTP/1.1
request parsing — no new runtime dependencies), so the daemon runs
wherever the library runs.  Design:

* **One job core.**  Every submission becomes a
  :class:`~repro.harness.jobs.JobSpec` and runs through the shared
  :class:`~repro.harness.jobs.JobRunner` — the exact lifecycle the CLI
  ``run`` path rides, so daemon-computed cells land on CLI-identical
  cache keys (a daemon warms the cache for the CLI and vice versa) and a
  fully-cached job is answered without dispatching to any worker
  (:attr:`ShardedExecutor.dispatches <repro.harness.parallel.
  ShardedExecutor.dispatches>` does not move).
* **Bounded admission.**  ``POST /jobs`` admits into a queue of
  ``queue_limit`` pending jobs; when the queue is full the request is
  rejected with **429** and the current queue depth — explicit
  backpressure instead of unbounded memory growth.  A single worker
  task drains the queue onto the runner **off the event loop** (in a
  thread via :meth:`loop.run_in_executor`), so the HTTP endpoints stay
  responsive while a job computes.
* **Graceful drain.**  On SIGTERM (or :meth:`ExperimentService.
  begin_drain`) the daemon stops admitting (`503 draining`), finishes
  the in-flight job and everything already queued — status endpoints
  keep answering throughout — then closes its sockets and exits
  cleanly.
* **Observability.**  ``GET /stats`` reports throughput, cache-hit
  rate, queue depth, latency percentiles and the executor's dispatch /
  pool counters; ``GET /jobs/<id>`` exposes the per-cell hit/miss
  provenance of a finished job.

Validation happens at admission: unknown experiment ids, unknown device
names, malformed overrides and unknown body fields are 400s produced by
the job core's named errors, never mid-run failures.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass, field
from urllib.parse import parse_qs, urlsplit

from ...errors import ReproError
from ...experiments import get_experiment, list_experiments
from ..jobs import JobOutcome, JobRunner, JobSpec

__all__ = ["ExperimentService", "JobRecord", "ServiceStats", "ServiceThread"]

#: Maximum accepted request-body size; a daemon must bound what it buffers.
_MAX_BODY_BYTES = 1_048_576


def _percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated percentile of an ascending list (q in [0, 1])."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


@dataclass
class ServiceStats:
    """Aggregate service counters + a latency record.

    Latencies are end-to-end job latencies (admission to completion,
    queue wait included — what a submitter experiences), bounded to the
    most recent :attr:`max_latencies` completions so a long-lived daemon
    cannot grow without bound.
    """

    started_at: float = field(default_factory=time.monotonic)
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected_429: int = 0
    rejected_503: int = 0
    jobs_cached: int = 0
    max_latencies: int = 4096
    latencies_s: list[float] = field(default_factory=list)

    def record_completion(self, latency_s: float, *, cached: bool, failed: bool) -> None:
        if failed:
            self.failed += 1
        else:
            self.completed += 1
            if cached:
                self.jobs_cached += 1
        self.latencies_s.append(latency_s)
        if len(self.latencies_s) > self.max_latencies:
            del self.latencies_s[: -self.max_latencies]

    def as_dict(self) -> dict:
        uptime = max(time.monotonic() - self.started_at, 1e-9)
        lat = sorted(self.latencies_s)
        return {
            "uptime_s": uptime,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected_429": self.rejected_429,
            "rejected_503": self.rejected_503,
            "jobs_cached": self.jobs_cached,
            "hit_rate": (self.jobs_cached / self.completed) if self.completed else 0.0,
            "throughput_rps": self.completed / uptime,
            "latency_ms": {
                "p50": _percentile(lat, 0.50) * 1e3,
                "p99": _percentile(lat, 0.99) * 1e3,
                "n": len(lat),
            },
        }


@dataclass
class JobRecord:
    """One admitted job: spec, lifecycle status, outcome."""

    job_id: str
    spec: JobSpec
    status: str = "queued"  # queued -> running -> done | failed
    error: str | None = None
    outcome: JobOutcome | None = None
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: float | None = None
    finished_at: float | None = None
    #: Set when the job reaches a terminal state (``?wait=1`` awaits it).
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def as_dict(self, *, include_result: bool = False) -> dict:
        doc = {
            "job_id": self.job_id,
            "status": self.status,
            "spec": self.spec.as_dict(),
        }
        if self.started_at is not None:
            doc["queue_wait_s"] = self.started_at - self.submitted_at
        if self.finished_at is not None:
            doc["latency_s"] = self.finished_at - self.submitted_at
        if self.error is not None:
            doc["error"] = self.error
        if self.outcome is not None:
            doc["outcome"] = self.outcome.as_dict(include_result=include_result)
        return doc


class _HttpError(Exception):
    """Routing-level error carrying an HTTP status + JSON body."""

    def __init__(self, status: int, message: str, **extra) -> None:
        super().__init__(message)
        self.status = status
        self.body = {"error": message, **extra}


class ExperimentService:
    """The daemon: bounded-queue admission over one shared job runner.

    Parameters
    ----------
    runner:
        The :class:`~repro.harness.jobs.JobRunner` every job runs
        through.  Its executor lives as long as the service does — one
        spawn pool for the daemon's whole lifetime (no per-job churn).
    queue_limit:
        Maximum *pending* jobs; admission beyond it is a 429.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read
        :attr:`port` after :meth:`start`).
    """

    def __init__(
        self,
        runner: JobRunner,
        *,
        queue_limit: int = 32,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if queue_limit < 1:
            raise ReproError(f"queue_limit must be >= 1, got {queue_limit}")
        self.runner = runner
        self.queue_limit = queue_limit
        self.host = host
        self.port = port
        self.stats = ServiceStats()
        self.jobs: dict[str, JobRecord] = {}
        self._queue: asyncio.Queue[JobRecord | None] = asyncio.Queue()
        self._job_counter = 0
        self._draining = False
        self._drained = asyncio.Event()
        self._server: asyncio.AbstractServer | None = None
        self._worker_task: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        """Bind the listening socket and launch the queue worker."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._worker_task = asyncio.create_task(self._worker())

    async def serve_until_drained(self) -> None:
        """Run until :meth:`begin_drain` completes: in-flight and queued
        jobs finish, new submissions are rejected, sockets close."""
        if self._server is None:
            await self.start()
        await self._drained.wait()
        self._server.close()
        await self._server.wait_closed()
        if self._worker_task is not None:
            await self._worker_task

    def begin_drain(self) -> None:
        """Stop admitting; finish what is queued; then shut down.

        Safe to call from a signal handler.  Status endpoints keep
        answering until the queue is empty and the in-flight job (if
        any) has finished.
        """
        if self._draining:
            return
        self._draining = True
        # A sentinel wakes the worker even on an empty queue.
        self._queue.put_nowait(None)

    @property
    def draining(self) -> bool:
        return self._draining

    # --------------------------------------------------------------- worker
    def _run_record(self, record: JobRecord) -> JobOutcome:
        """The blocking job execution (runs in a thread, off the loop)."""
        return self.runner.run(record.spec, strict_devices=True)

    async def _worker(self) -> None:
        """Drain the queue onto the shared runner, one job at a time."""
        loop = asyncio.get_running_loop()
        while True:
            record = await self._queue.get()
            if record is None:  # drain sentinel
                if self._queue.empty():
                    break
                # Re-enqueue behind the remaining jobs: drain means
                # "finish everything admitted", not "drop the queue".
                self._queue.put_nowait(None)
                continue
            record.status = "running"
            record.started_at = time.monotonic()
            try:
                outcome = await loop.run_in_executor(None, self._run_record, record)
            except ReproError as exc:
                record.error = str(exc)
                record.status = "failed"
            except Exception as exc:  # noqa: BLE001 - a job must never kill the daemon
                record.error = f"{type(exc).__name__}: {exc}"
                record.status = "failed"
            else:
                record.outcome = outcome
                record.status = "done"
            record.finished_at = time.monotonic()
            self.stats.record_completion(
                record.finished_at - record.submitted_at,
                cached=bool(record.outcome and record.outcome.cached),
                failed=record.status == "failed",
            )
            record.done.set()
        self._drained.set()

    # ------------------------------------------------------------- requests
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, body = await self._handle_request(reader)
        except _HttpError as exc:
            status, body = exc.status, exc.body
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 - malformed input must not kill the daemon
            status, body = 500, {"error": f"{type(exc).__name__}: {exc}"}
        payload = json.dumps(body, default=str).encode()
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 429: "Too Many Requests",
                  500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        try:
            writer.write(head.encode() + payload)
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass
        finally:
            writer.close()

    async def _handle_request(self, reader: asyncio.StreamReader) -> tuple[int, dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise _HttpError(400, "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line: {request_line!r}")
        method, target, _version = parts
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, f"bad Content-Length: {value.strip()!r}")
        if content_length > _MAX_BODY_BYTES:
            raise _HttpError(400, f"request body exceeds {_MAX_BODY_BYTES} bytes")
        raw_body = await reader.readexactly(content_length) if content_length else b""
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        return await self._route(method, path, query, raw_body)

    async def _route(
        self, method: str, path: str, query: dict, raw_body: bytes
    ) -> tuple[int, dict]:
        if method == "POST" and path == "/jobs":
            return await self._post_job(query, raw_body)
        if method == "GET" and path == "/experiments":
            return 200, {
                "experiments": [
                    {"experiment_id": eid, "title": get_experiment(eid).title}
                    for eid in list_experiments()
                ]
            }
        if method == "GET" and path == "/stats":
            return 200, self._stats_doc()
        if method == "GET" and path == "/jobs":
            return 200, {
                "jobs": [
                    {"job_id": r.job_id, "status": r.status,
                     "experiment_id": r.spec.experiment_id}
                    for r in self.jobs.values()
                ]
            }
        if method == "GET" and path.startswith("/jobs/"):
            record = self.jobs.get(path[len("/jobs/"):])
            if record is None:
                raise _HttpError(404, "no such job")
            return 200, record.as_dict(include_result=query.get("result") == "1")
        if method == "GET" and path.startswith("/results/"):
            return self._get_result(path[len("/results/"):], query)
        raise _HttpError(404, f"no route for {method} {path}")

    def _stats_doc(self) -> dict:
        doc = self.stats.as_dict()
        doc.update(
            queue_depth=self._queue_depth(),
            queue_limit=self.queue_limit,
            draining=self._draining,
        )
        executor = self.runner.executor
        doc["executor"] = {
            "workers": getattr(executor, "workers", 1),
            "dispatches": getattr(executor, "dispatches", None),
            "pools_created": getattr(executor, "pools_created", None),
        }
        return doc

    def _queue_depth(self) -> int:
        """Pending jobs (the drain sentinel is not a job)."""
        depth = self._queue.qsize()
        return max(depth - 1, 0) if self._draining else depth

    async def _post_job(self, query: dict, raw_body: bytes) -> tuple[int, dict]:
        if self._draining:
            self.stats.rejected_503 += 1
            raise _HttpError(503, "draining: no new jobs accepted")
        try:
            doc = json.loads(raw_body.decode() or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}")
        try:
            spec = JobSpec.from_dict(doc)
            # Fail fast at admission: unknown experiment ids, unknown
            # device names and ill-fitting device lists are 400s here,
            # not failed jobs discovered by polling.
            self.runner.plan_overrides(spec, strict_devices=True)
        except ReproError as exc:
            raise _HttpError(400, str(exc))
        if self._queue_depth() >= self.queue_limit:
            self.stats.rejected_429 += 1
            raise _HttpError(
                429,
                "job queue is full",
                queue_depth=self._queue_depth(),
                queue_limit=self.queue_limit,
            )
        self._job_counter += 1
        record = JobRecord(job_id=f"job-{self._job_counter:06d}", spec=spec)
        self.jobs[record.job_id] = record
        self.stats.submitted += 1
        self._queue.put_nowait(record)
        if query.get("wait") == "1":
            await record.done.wait()
            return 200, record.as_dict(include_result=query.get("result") == "1")
        return 202, {
            "job_id": record.job_id,
            "status": record.status,
            "queue_depth": self._queue_depth(),
        }

    def _get_result(self, key: str, query: dict) -> tuple[int, dict]:
        """Answer a cache key directly from the result cache.

        Metadata comes from the head-probe (:meth:`~repro.harness.
        results.ResultCache.read_meta`); the payload is deserialised
        (:meth:`~repro.harness.results.ResultCache.lookup`) only when
        ``?payload=1`` asks for it.  No worker is ever touched.
        """
        cache = self.runner.cache
        if cache is None:
            raise _HttpError(404, "service runs without a result cache")
        meta = cache.read_meta(key)
        if meta is None:
            raise _HttpError(404, "no cached result under this key")
        doc = {"key": key, "meta": meta}
        if query.get("payload") == "1":
            result = cache.lookup(key)
            if result is None:  # deleted between probe and read
                raise _HttpError(404, "no cached result under this key")
            doc["result"] = result.as_dict()
        return 200, doc


class ServiceThread:
    """Run an :class:`ExperimentService` on a background thread.

    The bench harness, the test suite and the quickstart all need a live
    daemon inside one process; this wraps the event loop + readiness
    handshake + graceful drain into a context manager::

        with ServiceThread(runner, queue_limit=8) as svc:
            urllib.request.urlopen(svc.base_url + "/stats")
    """

    def __init__(self, runner: JobRunner, **service_kwargs) -> None:
        self.service = ExperimentService(runner, **service_kwargs)
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def base_url(self) -> str:
        return f"http://{self.service.host}:{self.service.port}"

    def __enter__(self) -> "ServiceThread":
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("service failed to start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        return self

    def _main(self) -> None:
        async def run() -> None:
            try:
                await self.service.start()
            except BaseException as exc:
                self._startup_error = exc
                raise
            finally:
                self._ready.set()
            await self.service.serve_until_drained()

        try:
            asyncio.run(run())
        except BaseException:  # noqa: BLE001 - surfaced via _startup_error/join
            if not self._ready.is_set():
                self._ready.set()

    def drain(self) -> None:
        """Trigger a graceful drain from any thread."""
        loop = self.service._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.service.begin_drain)

    def __exit__(self, *exc) -> None:
        self.drain()
        if self._thread is not None:
            self._thread.join(timeout=60.0)
