"""Table 8 — GraphSAGE inference runtime: H100 (D/ND) vs LPU.

H100 times compose the calibrated per-kernel cost model (deterministic
``index_add`` pays its ~12x sort-based penalty, so deterministic inference
is slower); the LPU time is the static compiler's fixed cycle count for
the dataflow-mapped program — ~30x faster than the GPU, consistent with
the paper and its reference [29] (Hosseini et al.).

Alongside the composed runtimes, a small **lockstep simulated check** runs
the batched run-axis engine
(:func:`~repro.experiments._gnn.run_inference_runs`) on a reduced graph:
the faster ND kernels' outputs are bitwise non-unique across runs while
the deterministic pass is a single fixed bit pattern — the runtime/
reproducibility trade the table quantifies.
"""

from __future__ import annotations

import numpy as np

from ..graph.datasets import cora_like
from ..metrics.array import count_variability, unique_output_count
from ..nn import GraphSAGE
from ..runtime import RunContext
from .base import ShardAxis, ShardableExperiment, register
from .sharding import Invariant, RunConcat
from ._gnn import (
    _GNN_INIT_STREAM,
    gnn_inference_cost_us,
    lpu_gnn_inference_us,
    run_inference,
    run_inference_runs,
)

__all__ = ["Table8GnnRuntime"]


class Table8GnnRuntime(ShardableExperiment):
    """Regenerates Table 8 (GraphSAGE inference runtimes).

    Sharding: the composed cost-model rows are deterministic (computed in
    ``finalize``); only the lockstep ND inference check consumes scheduler
    streams — one per check run, in run order — so a shard seeks the
    ladder to its window and evaluates that window's lockstep passes,
    whose logits concatenate bit-exactly into the serial ``(R, N, C)``
    stack.
    """

    experiment_id = "table8"
    title = "Table 8: H100 and Groq runtime for GraphSAGE inference"
    shardable_axes = (ShardAxis("check_runs"),)

    def params_for(self, scale: str) -> dict:
        return {
            "n_nodes": 2708,
            "n_directed_edges": 2 * 5429,
            "n_features": 1433,
            "hidden": 16,
            "n_classes": 7,
            # Lockstep D-vs-ND output check (reduced graph, batched engine).
            "check_nodes": 96,
            "check_runs": 6,
        }

    def _check_setup(self, ctx: RunContext, params: dict):
        """Reduced graph + shared model of the lockstep check (data/init
        streams only — identical in every shard)."""
        ds = cora_like(
            num_nodes=params["check_nodes"], num_edges=2 * params["check_nodes"],
            num_features=32, num_classes=params["n_classes"], ctx=ctx,
        )
        model = GraphSAGE(
            ds.num_features, params["hidden"], ds.num_classes,
            rng=ctx.init(stream=_GNN_INIT_STREAM),
        )
        return ds, model

    def shard_run(self, ctx: RunContext, params: dict, lo: int, hi: int) -> dict:
        base = ctx.peek_run_counter()
        ds, model = self._check_setup(ctx, params)
        det_logits = run_inference(model, ds, deterministic=True, ctx=ctx)
        # Serial ladder: ND check run r draws stream base + r.
        ctx.seek_runs(base + lo)
        nd_logits = run_inference_runs(
            model, ds, deterministic=False, ctx=ctx, n_runs=hi - lo
        )
        ctx.seek_runs(base + params["check_runs"])
        return {
            "det_logits": Invariant(det_logits),
            "nd_logits": RunConcat(nd_logits, axis=0),
        }

    def finalize(self, ctx: RunContext, params: dict, payload: dict):
        dims = dict(
            n_nodes=params["n_nodes"],
            n_directed_edges=params["n_directed_edges"],
            n_features=params["n_features"],
            hidden=params["hidden"],
            n_classes=params["n_classes"],
        )
        t_d = gnn_inference_cost_us("h100", deterministic=True, **dims)
        t_nd = gnn_inference_cost_us("h100", deterministic=False, **dims)
        t_lpu = lpu_gnn_inference_us(**dims)
        rows = [
            {"inference": "Deterministic", "h100_ms": t_d / 1e3, "groq_ms": t_lpu / 1e3,
             "paper_h100_ms": 3.92, "paper_groq_ms": 0.066},
            {"inference": "Non-deterministic", "h100_ms": t_nd / 1e3, "groq_ms": None,
             "paper_h100_ms": 2.17, "paper_groq_ms": None},
        ]
        speedup = t_nd / t_lpu

        # Lockstep simulated inference: the ND kernels that buy the faster
        # H100 row also make the outputs run-dependent.
        n_check, n_runs = params["check_nodes"], params["check_runs"]
        det_logits = payload["det_logits"]
        nd_logits = payload["nd_logits"]
        nd_check = {
            "n_runs": n_runs,
            "distinct_nd_outputs": unique_output_count(list(nd_logits)),
            "vc_vs_deterministic_mean": float(
                np.mean([count_variability(det_logits, nd_logits[r]) for r in range(n_runs)])
            ),
        }

        notes = (
            "Shape checks: deterministic inference slower than ND on the GPU "
            "(index_add sort fallback); the LPU is "
            f"~{speedup:.0f}x faster than the fastest GPU configuration "
            "(paper: ~30x); the LPU entry is a single fixed number. "
            f"Lockstep check ({n_runs} batched runs, {n_check}-node graph): "
            f"{nd_check['distinct_nd_outputs']} distinct ND outputs vs one "
            "deterministic bit pattern."
        )
        return rows, notes, {"lpu_speedup_vs_gpu": speedup, "nd_inference_check": nd_check}


register(Table8GnnRuntime())
